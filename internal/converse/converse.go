// Package converse implements the Converse adaptive runtime layer of
// Charm++ over the PAMI substrate: processing elements (PEs) with
// message-driven schedulers, SMP nodes, intra-node pointer-exchange
// delivery through lockless queues, the network machine layer, and the
// optimized idle-poll loop (paper §III).
//
// Three execution modes are supported, matching the paper's study:
//
//   - ModeNonSMP: one PE per process; the PE does both computation and
//     communication.
//   - ModeSMP: several worker PEs share a process (an SMP node); workers
//     advance the network themselves. Intra-node messages are pointer
//     exchanges through L2 lockless queues.
//   - ModeSMPComm: as ModeSMP, plus dedicated communication threads that
//     advance PAMI contexts, woken by the wakeup unit.
package converse

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blueq/internal/aggregate"
	"blueq/internal/flowctl"
	"blueq/internal/lockless"
	"blueq/internal/mempool"
	"blueq/internal/obs"
	"blueq/internal/pami"
	"blueq/internal/torus"
	"blueq/internal/transport"
	"blueq/internal/wakeup"
)

// Mode selects the process/thread structure (paper §III, Fig. 7).
type Mode int

const (
	// ModeNonSMP runs one PE per process.
	ModeNonSMP Mode = iota
	// ModeSMP runs several worker PEs per process without comm threads.
	ModeSMP
	// ModeSMPComm adds dedicated communication threads.
	ModeSMPComm
)

func (m Mode) String() string {
	switch m {
	case ModeNonSMP:
		return "nonSMP"
	case ModeSMP:
		return "SMP"
	case ModeSMPComm:
		return "SMP+comm"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// QueueKind selects the intra-node queue implementation (Fig. 8 ablation).
type QueueKind int

const (
	// L2Queues uses the lockless L2-atomic queues (the paper's scheme).
	L2Queues QueueKind = iota
	// MutexQueues uses the traditional mutex-guarded queues (baseline).
	MutexQueues
)

// Config describes a Converse machine.
type Config struct {
	// Nodes is the number of simulated processes (BG/Q nodes in SMP mode).
	Nodes int
	// WorkersPerNode is the number of worker PEs per process. Forced to 1
	// in ModeNonSMP.
	WorkersPerNode int
	// CommThreads is the number of communication threads per process in
	// ModeSMPComm (ignored otherwise). Defaults to 1 per 4 workers.
	CommThreads int
	// Mode selects the execution mode.
	Mode Mode
	// Queues selects the intra-node queue implementation.
	Queues QueueKind
	// RingSize overrides the L2 queue ring size (0 = default). Must be a
	// power of two: the L2 ring indexes slots by masking the producer
	// ticket, exactly as the BG/Q machine layer does.
	RingSize int
	// Transport overrides the messaging substrate. Nil selects the
	// in-process functional torus network (transport inproc), which the
	// machine then owns and closes on Wait. A caller-supplied transport
	// must span at least Nodes endpoints and is closed by the caller.
	Transport transport.Transport
	// RendezvousTimeout, when positive, bounds how long a rendezvous
	// sender waits for the destination's ack before retransmitting the
	// header (with exponential backoff; receivers dedup by sequence
	// number). Zero disables timeouts — correct for reliable transports,
	// where the timers would be pure overhead. NewMachine defaults it to
	// DefaultRendezvousTimeout when the transport is unreliable.
	RendezvousTimeout time.Duration
	// OnRzvAbandon is invoked (from the retry-timer goroutine, after the
	// transfer is already untracked) when a rendezvous transfer is
	// abandoned: maxRzvRetries header retransmissions to dstRank went
	// unacked, so bytes of payload are silently gone. The default counts
	// it (converse/rzv_abandon_total) and emits a rate-limited log line;
	// applications that cannot tolerate silent loss override it to
	// surface or escalate. Must not block.
	OnRzvAbandon func(dstRank, bytes int)
	// Aggregation, when non-nil, arms the TRAM-style per-destination
	// message aggregation layer: small remote messages (at or below
	// Aggregation.MaxMsgBytes) append into per-(src node, dst node) batch
	// buffers and travel as one PAMI inject per batch, flushed when full,
	// when Aggregation.MaxDelay expires, or — immediately — when the
	// sending scheduler goes idle. Zero-valued fields inside take their
	// defaults. Self-sends, broadcasts, reductions, and messages marked
	// NoAgg bypass the layer. Nil (the default) keeps the one-inject-per-
	// message path.
	Aggregation *aggregate.Config
	// BroadcastFanout is the spanning-tree arity for Broadcast (children
	// per node). Zero selects the default of 4; values below 2 are
	// rejected (a unary tree serializes the broadcast on a chain).
	BroadcastFanout int
	// FlowControl, when non-nil, arms the end-to-end flow-control and
	// overload-protection layer: per-(src,dst) eager-send credit windows
	// on the PAMI channel, hard caps on the lockless overflow queues and
	// the reliability reorder buffers, mempool pressure watermarks that
	// shrink granted windows, and best-effort shedding under hard
	// pressure. Zero-valued fields inside take their defaults. Nil (the
	// default) leaves every structure unbounded, as before.
	FlowControl *flowctl.Config
	// EnvPoolThreshold sizes the per-PE message-envelope pools (§III-B):
	// the depth beyond which frees spill to the garbage collector. Zero
	// selects mempool.DefaultEnvPoolThreshold; a negative value disables
	// envelope pooling entirely, so PE.NewMessage degrades to a heap
	// allocation (the pre-pool behavior, kept as the before/after lever
	// for cmd/memalloc -runtime).
	EnvPoolThreshold int
}

func (c *Config) normalize() error {
	if c.Nodes < 1 {
		return fmt.Errorf("converse: Nodes = %d", c.Nodes)
	}
	if c.RingSize < 0 {
		return fmt.Errorf("converse: RingSize = %d, must be >= 0", c.RingSize)
	}
	if c.RingSize > 0 && c.RingSize&(c.RingSize-1) != 0 {
		return fmt.Errorf("converse: RingSize = %d, must be a power of two (the L2 ring masks producer tickets)", c.RingSize)
	}
	if c.Mode == ModeNonSMP {
		c.WorkersPerNode = 1
		c.CommThreads = 0
	}
	if c.WorkersPerNode < 1 {
		c.WorkersPerNode = 1
	}
	if c.Mode == ModeSMPComm && c.CommThreads < 1 {
		c.CommThreads = (c.WorkersPerNode + 3) / 4 // 1 comm per 4 workers
	}
	if c.Mode != ModeSMPComm {
		c.CommThreads = 0
	}
	if c.BroadcastFanout == 0 {
		c.BroadcastFanout = DefaultBroadcastFanout
	}
	if c.BroadcastFanout < 2 {
		return fmt.Errorf("converse: BroadcastFanout = %d, must be >= 2", c.BroadcastFanout)
	}
	return nil
}

// Handler is a Converse message handler, invoked on the destination PE's
// scheduler.
type Handler func(pe *PE, msg *Message)

// Message is a Converse message. Within a node it travels by pointer
// exchange; across nodes the functional network delivers the same value and
// Bytes records the modelled wire size for statistics and the DES.
type Message struct {
	Handler int
	SrcPE   int
	Bytes   int
	Prio    int // lower runs first; 0 is the default
	Payload any
	// BestEffort marks the message droppable under overload: when the
	// flow-control layer is armed and the machine is shedding (hard
	// memory pressure), Send counts and discards it instead of queueing.
	// Reliable traffic leaves this false and is never shed.
	BestEffort bool
	// NoAgg opts the message out of the aggregation layer even when it is
	// armed and the message is small enough: it is injected individually.
	// Broadcast tree traffic and reduction contributions set it — their
	// latency is on the critical path of a collective, and a broadcast
	// payload shared across clones must not be batched per-destination.
	NoAgg bool

	seq       uint64 // FIFO tie-break within equal priorities
	destLocal int    // worker rank within the destination node
	enqNS     int64  // enqueue timestamp for the deliver-latency histogram (0 when obs is off)

	// viaNet/fromNode mark a message that arrived over the network while
	// flow control was armed: its eager-send credit is released when the
	// destination PE finishes executing it (deferred release), so the
	// credit window bounds the consumer's whole backlog, not just the
	// packets on the wire.
	viaNet   bool
	fromNode int

	// Pooled-envelope bookkeeping (message.go). mp non-nil marks an
	// envelope from the machine's §III-B pool; owner is the PE whose pool
	// recycles it; refs is its reference count, maintained with
	// sync/atomic functions (a plain int32 so legacy value copies of
	// unpooled messages stay vet-clean). All three survive the
	// recycle-time scrub; everything else is zeroed on reuse.
	mp    *mempool.EnvPool[Message]
	owner int32
	refs  int32
}

// Machine is a running Converse instance spanning Config.Nodes processes.
type Machine struct {
	cfg      Config
	tor      *torus.Torus
	tr       transport.Transport
	ownsTr   bool // machine created the transport and closes it on Wait
	client   *pami.Client
	nodes    []*SMPNode
	pes      []*PE
	handlers []Handler
	started  atomic.Bool
	stopped  atomic.Bool
	wg       sync.WaitGroup

	// dispatch ids on the PAMI layer
	dispConverse   int
	dispRendezvous int
	dispRzvAck     int
	dispAggBatch   int

	// fc is the flow-control controller, nil unless Config.FlowControl
	// was set.
	fc *flowctl.Controller

	// envPool is the per-PE message-envelope pool (message.go), nil when
	// Config.EnvPoolThreshold < 0.
	envPool *mempool.EnvPool[Message]

	rzvSeq   atomic.Uint64
	rzvStats RendezvousStats

	// rendezvous timeout machinery (rendezvous.go), armed only when
	// cfg.RendezvousTimeout > 0
	rzvMu   sync.Mutex
	rzvPend map[uint64]*rzvPending
	rzvSeen map[uint64]bool
	// rzvAbandonLogNS rate-limits the default abandonment log line.
	rzvAbandonLogNS atomic.Int64

	// internal handler id for spanning-tree broadcasts
	bcastHandler int

	// shutdown hooks (OnShutdown), run once from Shutdown so subsystems
	// layered above the machine (fault tolerance, checkpoint timers) tear
	// down with the same discipline as the rendezvous/reliability timers.
	hooksMu       sync.Mutex
	shutdownHooks []func()
}

// NewMachine builds a machine; handlers must be registered before Start.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ctxPerNode := cfg.WorkersPerNode
	tr := cfg.Transport
	ownsTr := false
	if tr == nil {
		tr = transport.NewInproc(torus.MustNew(torus.ShapeForNodes(cfg.Nodes)), ctxPerNode)
		ownsTr = true
	} else if tr.Nodes() < cfg.Nodes {
		return nil, fmt.Errorf("converse: transport %s spans %d nodes, need %d", tr, tr.Nodes(), cfg.Nodes)
	}
	if cfg.RendezvousTimeout == 0 && !tr.Reliable() {
		cfg.RendezvousTimeout = DefaultRendezvousTimeout
	}
	var fc *flowctl.Controller
	if cfg.FlowControl != nil {
		fc = flowctl.NewController(*cfg.FlowControl, cfg.Nodes)
	}
	m := &Machine{
		cfg:            cfg,
		tor:            tr.Torus(),
		tr:             tr,
		ownsTr:         ownsTr,
		client:         pami.NewClientFlow(tr, ctxPerNode, fc),
		fc:             fc,
		dispConverse:   1,
		dispRendezvous: 2,
		dispRzvAck:     3,
		dispAggBatch:   4,
	}
	if fc != nil {
		// Rendezvous acks complete transfers that free receiver memory;
		// gating them on the credits they replenish would be a priority
		// inversion, so they ride outside the windows. Converse message
		// credits release at execution (see Message.viaNet), not at PAMI
		// dispatch.
		fc.ExemptDispatch(m.dispRzvAck)
		fc.DeferRelease(m.dispConverse)
		// Aggregated batches are credit-exempt at inject: each inner
		// message already charged its own credit when it was appended to
		// the batch (sendAggregated), released when the destination PE
		// executes it. Charging the envelope too would double-bill.
		fc.ExemptDispatch(m.dispAggBatch)
	}
	if cfg.RendezvousTimeout > 0 {
		m.rzvPend = make(map[uint64]*rzvPending)
		m.rzvSeen = make(map[uint64]bool)
	}
	m.envPool = newEnvPool(&cfg, cfg.Nodes*cfg.WorkersPerNode)
	for r := 0; r < cfg.Nodes; r++ {
		node := &SMPNode{machine: m, rank: r, halted: make(chan struct{})}
		alloc := mempool.NewPoolAllocator(cfg.WorkersPerNode+cfg.CommThreads, 0)
		node.alloc = alloc
		if fc != nil {
			fcc := fc.Config()
			alloc.SetWatermarks(fcc.SoftWatermark, fcc.HardWatermark)
			rank := r
			alloc.OnPressureChange(func(level int) { fc.SetPressure(rank, level) })
		}
		for w := 0; w < cfg.WorkersPerNode; w++ {
			pe := &PE{
				id:    r*cfg.WorkersPerNode + w,
				local: w,
				node:  node,
				wake:  wakeup.NewUnit(),
			}
			switch cfg.Queues {
			case MutexQueues:
				pe.queue = lockless.NewMutexQueue()
			default:
				q := lockless.NewL2Queue(cfg.RingSize)
				if fc != nil {
					fcc := fc.Config()
					q.SetOverflowCap(fcc.OverflowCap, fcc.MaxBlock)
				}
				pe.queue = q
			}
			node.pes = append(node.pes, pe)
			m.pes = append(m.pes, pe)
		}
		for c := 0; c < ctxPerNode; c++ {
			ctx := m.client.Node(r).Context(c)
			node.contexts = append(node.contexts, ctx)
			ctx.RegisterDispatch(m.dispConverse, node.onNetworkMessage)
			ctx.RegisterDispatch(m.dispAggBatch, node.onAggBatch)
		}
		if cfg.Aggregation != nil && cfg.Nodes > 1 {
			node.initAggregator(*cfg.Aggregation)
		}
		// Without comm threads each worker owns its context's wakeups.
		if cfg.Mode != ModeSMPComm {
			for c, ctx := range node.contexts {
				ctx.SetWaker(node.pes[c%len(node.pes)].wake)
			}
		}
		m.nodes = append(m.nodes, node)
	}
	m.registerRendezvous()
	m.registerBroadcast()
	// A transport with fail-stop injection halts the dying node's
	// schedulers the moment its endpoints go silent, so the simulated node
	// stops computing exactly when it stops communicating.
	if k, ok := tr.(transport.Killer); ok {
		k.SetKillHook(func(rank int) {
			if rank < cfg.Nodes {
				m.HaltNode(rank)
			}
		})
	}
	return m, nil
}

// Config returns the (normalized) machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Torus returns the network topology.
func (m *Machine) Torus() *torus.Torus { return m.tor }

// Transport returns the messaging substrate the machine runs over.
func (m *Machine) Transport() transport.Transport { return m.tr }

// NumPEs returns the total number of worker PEs.
func (m *Machine) NumPEs() int { return len(m.pes) }

// NumNodes returns the number of processes.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// PE returns the PE with the given global id. Valid only for message-setup
// purposes before Start; application code receives *PE in handlers.
func (m *Machine) PE(id int) *PE { return m.pes[id] }

// Node returns the SMP node with the given rank.
func (m *Machine) Node(rank int) *SMPNode { return m.nodes[rank] }

// RegisterHandler adds a handler to the global table (CmiRegisterHandler)
// and returns its index. Must be called before Start.
func (m *Machine) RegisterHandler(h Handler) int {
	if m.started.Load() {
		panic("converse: RegisterHandler after Start")
	}
	m.handlers = append(m.handlers, h)
	return len(m.handlers) - 1
}

// Start launches the scheduler goroutines. If initPE is non-nil it runs on
// every PE before that PE begins scheduling (ConverseInit-style).
func (m *Machine) Start(initPE func(pe *PE)) {
	if !m.started.CompareAndSwap(false, true) {
		panic("converse: Start called twice")
	}
	// Launch comm threads first so arrivals during init are progressed.
	if m.cfg.Mode == ModeSMPComm {
		for _, node := range m.nodes {
			node.startCommThreads(m.cfg.CommThreads)
		}
	}
	for _, pe := range m.pes {
		m.wg.Add(1)
		go pe.run(initPE)
	}
}

// Shutdown stops all schedulers and comm threads (CsdExitScheduler on every
// PE). Safe to call from handlers or externally, once. In-flight transfers
// are abandoned: pending rendezvous and reliability retransmission timers
// are cancelled, and OnShutdown hooks run, so no timer above or below the
// scheduler fires into the stopping machine.
func (m *Machine) Shutdown() {
	if !m.stopped.CompareAndSwap(false, true) {
		return
	}
	m.cancelRendezvousTimers()
	m.hooksMu.Lock()
	hooks := append([]func(){}, m.shutdownHooks...)
	m.hooksMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	// Final aggregation flush before the PAMI clients stop, so nothing a
	// handler sent in its last breath dies in a batch buffer.
	for _, node := range m.nodes {
		if node.agg != nil {
			node.agg.Close()
		}
	}
	for _, node := range m.nodes {
		m.client.Node(node.rank).Shutdown()
	}
	for _, pe := range m.pes {
		pe.wake.Signal()
	}
}

// OnShutdown registers a hook that runs exactly once, early in Shutdown.
// Layers that arm their own timers (heartbeats, checkpoint schedules) use
// it to cancel them with the same discipline the machine applies to its
// rendezvous and reliability timers. Hooks registered after Shutdown run
// immediately.
func (m *Machine) OnShutdown(fn func()) {
	m.hooksMu.Lock()
	if m.stopped.Load() {
		m.hooksMu.Unlock()
		fn()
		return
	}
	m.shutdownHooks = append(m.shutdownHooks, fn)
	m.hooksMu.Unlock()
}

// HaltNode fail-stops the node's schedulers: every PE on it exits its run
// loop without draining its queue, like a node board losing power. The
// rest of the machine keeps running. Idempotent; safe from any goroutine.
// NodeHalted's channel closes once every PE on the node has exited.
func (m *Machine) HaltNode(rank int) {
	node := m.nodes[rank]
	node.dead.Store(true)
	// Batches buffered on the dying node die with it — fail-stop, exactly
	// like packets sitting in a powered-off node's injection FIFOs.
	if node.agg != nil {
		node.agg.Discard()
	}
	// The dead node will never ack anything again: stop its reliability
	// retransmission timers now rather than letting them fire pointlessly
	// until machine teardown, and tear down its credit windows so any
	// sender parked on a credit the dead node holds unblocks immediately
	// instead of waiting out MaxBlock.
	m.client.Node(rank).Shutdown()
	if m.fc != nil {
		m.fc.DropPeer(rank)
	}
	// Quarantine the dead PEs' envelope pools: frees of envelopes they
	// owned (from survivors executing their last messages) fall through to
	// the GC instead of accumulating in pools nobody will allocate from
	// again. Envelopes still sitting in the dead node's scheduler queues
	// are dropped with the queues themselves — fail-stop, no leak.
	if m.envPool != nil {
		for _, pe := range node.pes {
			m.envPool.DropOwner(pe.id)
		}
	}
	for _, pe := range node.pes {
		pe.wake.Signal()
	}
}

// KillNode fail-stops a node end to end: its transport endpoints go silent
// (when the transport supports fail-stop injection) and its schedulers
// halt. This is the programmatic hook behind the faulty transport's
// kill=R@DUR spec events.
func (m *Machine) KillNode(rank int) {
	if k, ok := m.tr.(transport.Killer); ok {
		k.KillNode(rank) // kill hook calls HaltNode
	}
	m.HaltNode(rank) // direct halt when the transport has no kill support
}

// FailLink takes the physical torus link a-b out of service, machine-wide:
// routes recompute around it (detouring when no minimal route survives),
// the contended backend re-books serialization on the new paths, and a
// (src,dst) pair the down links partition loses its packets on the wire.
// This is the programmatic hook behind the faulty transport's
// link=A-B@DUR spec events; chaos harnesses call it directly.
func (m *Machine) FailLink(a, b int) error {
	if lf, ok := m.tr.(transport.LinkFaulter); ok {
		return lf.FailLink(a, b)
	}
	return m.tor.FailLink(a, b)
}

// HealLink returns the physical torus link a-b to service.
func (m *Machine) HealLink(a, b int) error {
	if lf, ok := m.tr.(transport.LinkFaulter); ok {
		return lf.HealLink(a, b)
	}
	return m.tor.HealLink(a, b)
}

// NodeDead reports whether the node has been halted or killed.
func (m *Machine) NodeDead(rank int) bool { return m.nodes[rank].dead.Load() }

// NodeHalted returns a channel that closes once every PE scheduler on the
// node has exited — the happens-before edge recovery needs before touching
// state the dead node's PEs were mutating.
func (m *Machine) NodeHalted(rank int) <-chan struct{} { return m.nodes[rank].halted }

// PAMIClient exposes the machine's PAMI client so layers above can
// register their own dispatch ids (the fault-tolerance heartbeats travel
// this way, below the scheduler and outside charm's message accounting).
func (m *Machine) PAMIClient() *pami.Client { return m.client }

// FlowController returns the flow-control controller, nil when
// Config.FlowControl was not set. Layers above use it to exempt their
// control-plane dispatch ids and to read the degradation-ladder state.
func (m *Machine) FlowController() *flowctl.Controller { return m.fc }

// QueueResidency returns the number of messages currently enqueued to PE
// schedulers but not yet executed, machine-wide — the resident scheduler
// backlog the flow-control layer exists to bound. Soak harnesses assert
// it stays under Nodes × OverflowCap-order limits.
func (m *Machine) QueueResidency() int64 {
	var n int64
	for _, pe := range m.pes {
		n += pe.Resident()
	}
	return n
}

// Wait blocks until all PE schedulers have exited, then stops comm threads
// and closes the transport if the machine created it.
func (m *Machine) Wait() {
	m.wg.Wait()
	for _, node := range m.nodes {
		node.stopCommThreads()
	}
	if m.ownsTr {
		m.tr.Close()
	}
}

// Run is Start+block-until-Shutdown convenience.
func (m *Machine) Run(initPE func(pe *PE)) {
	m.Start(initPE)
	m.Wait()
}

// SMPNode is one process: a set of worker PEs sharing memory, their PAMI
// contexts, comm threads and the node-level allocator.
type SMPNode struct {
	machine  *Machine
	rank     int
	pes      []*PE
	contexts []*pami.Context
	comm     []*pami.CommThread
	alloc    mempool.Allocator

	// agg is the node's outgoing aggregation layer, nil unless
	// Config.Aggregation was set (and the machine spans >1 node).
	// aggProgress is the closure a sender parked on a credit runs: it
	// flushes this node's buffers (buffered messages hold credits, so a
	// full window must be able to drain itself) and advances every
	// context so deliveries and releases happen even single-threaded.
	agg         *aggregate.Aggregator
	aggProgress func()

	// fail-stop state: dead stops the node's PE run loops; halted closes
	// (via haltOnce) when the last of them has exited.
	dead     atomic.Bool
	exited   atomic.Int32
	haltOnce sync.Once
	halted   chan struct{}
}

// Rank returns the node's process rank.
func (n *SMPNode) Rank() int { return n.rank }

// NumPEs returns the number of worker PEs on this node.
func (n *SMPNode) NumPEs() int { return len(n.pes) }

// Allocator returns the node's message-buffer allocator.
func (n *SMPNode) Allocator() mempool.Allocator { return n.alloc }

// HasCommThreads reports whether this node runs dedicated comm threads.
func (n *SMPNode) HasCommThreads() bool { return n.machine.cfg.Mode == ModeSMPComm }

// NumContexts returns the node's PAMI context count.
func (n *SMPNode) NumContexts() int { return len(n.contexts) }

// PostToComm queues work on context i's work queue; with comm threads
// enabled the work executes on a communication thread (PAMI_Context_post).
// Without comm threads the work runs when a worker next advances that
// context. The many-to-many layer uses this to parallelize message bursts
// across comm threads (paper §III-E).
func (n *SMPNode) PostToComm(i int, w func()) {
	n.contexts[i%len(n.contexts)].Post(w)
}

func (n *SMPNode) startCommThreads(k int) {
	if k < 1 || len(n.contexts) == 0 {
		return
	}
	if k > len(n.contexts) {
		k = len(n.contexts)
	}
	// Contexts are distributed evenly across comm threads so the load from
	// each worker spreads over all comm threads (paper §III-C).
	buckets := make([][]*pami.Context, k)
	for i, ctx := range n.contexts {
		buckets[i%k] = append(buckets[i%k], ctx)
	}
	for _, b := range buckets {
		n.comm = append(n.comm, pami.StartCommThread(b...))
	}
}

func (n *SMPNode) stopCommThreads() {
	for _, ct := range n.comm {
		ct.Stop()
	}
	n.comm = nil
}

// onNetworkMessage is the PAMI dispatch callback for Converse messages: it
// enqueues the message on the destination PE's scheduler queue.
func (n *SMPNode) onNetworkMessage(src int, data any, bytes int) {
	msg := data.(*Message)
	if n.machine.fc != nil && src != n.rank {
		msg.viaNet = true
		msg.fromNode = src
	}
	n.pes[msg.destLocal].enqueue(msg)
}

// PE is a Converse processing element: a worker thread with a
// message-driven scheduler.
type PE struct {
	id    int
	local int
	node  *SMPNode
	queue lockless.Queue
	wake  *wakeup.Unit

	sched    schedq
	executed atomic.Int64
	idles    atomic.Int64
	enqueued atomic.Int64

	// throttleNS, when positive, sleeps the scheduler for that many
	// nanoseconds before each handler invocation — the soak harness's
	// deliberately slowed consumer.
	throttleNS atomic.Int64
}

// Id returns the PE's global identifier (CmiMyPe).
func (pe *PE) Id() int { return pe.id }

// LocalRank returns the PE's rank within its node (CmiMyRank).
func (pe *PE) LocalRank() int { return pe.local }

// Node returns the PE's SMP node.
func (pe *PE) Node() *SMPNode { return pe.node }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.node.machine }

// NumPEs returns the machine's total PE count (CmiNumPes).
func (pe *PE) NumPEs() int { return len(pe.node.machine.pes) }

// Executed returns the number of messages this PE has run.
func (pe *PE) Executed() int64 { return pe.executed.Load() }

// Enqueued returns the number of messages queued to this PE. Together with
// Executed it gives recovery a per-PE quiescence probe: a PE with
// Enqueued == Executed has nothing waiting and nothing running.
func (pe *PE) Enqueued() int64 { return pe.enqueued.Load() }

// IdleCycles returns the number of scheduler iterations spent idle.
func (pe *PE) IdleCycles() int64 { return pe.idles.Load() }

// Resident returns the messages queued to this PE but not yet executed
// (scheduler queue plus priority queue).
func (pe *PE) Resident() int64 { return pe.enqueued.Load() - pe.executed.Load() }

// SetInvokeDelay makes the PE sleep for d before executing each message —
// an artificially slowed consumer for overload and soak testing. Zero
// restores full speed. Safe to call while the machine runs.
func (pe *PE) SetInvokeDelay(d time.Duration) { pe.throttleNS.Store(int64(d)) }

func (pe *PE) enqueue(msg *Message) {
	pe.enqueued.Add(1)
	if obs.On() {
		msg.enqNS = time.Now().UnixNano()
	}
	pe.queue.Enqueue(msg)
	pe.wake.Signal()
}

// enqueueBatch lands a run of messages bound for this PE with one counter
// update, one ring reservation, and one wakeup — the receive-side half of
// the aggregation amortization.
func (pe *PE) enqueueBatch(msgs []any) {
	pe.enqueued.Add(int64(len(msgs)))
	if obs.On() {
		now := time.Now().UnixNano()
		for _, m := range msgs {
			m.(*Message).enqNS = now
		}
	}
	pe.queue.EnqueueBatch(msgs)
	pe.wake.Signal()
}

// destLocal on Message routes to the right worker within a node.
// (kept unexported; set by Send)

// Send delivers msg to the PE with global id dst (CmiSyncSend). Within the
// node it is a pointer exchange through the destination's lockless queue;
// across nodes it goes through PAMI using this PE's context, choosing
// Send_immediate for short messages.
func (pe *PE) Send(dst int, msg *Message) error {
	m := pe.node.machine
	if dst < 0 || dst >= len(m.pes) {
		msg.releaseFrom(pe.id)
		return fmt.Errorf("converse: PE %d out of range [0,%d)", dst, len(m.pes))
	}
	msg.SrcPE = pe.id
	if msg.BestEffort && m.fc != nil && m.fc.TryShed(pe.id) {
		// Shedding (ladder rung 2): best-effort traffic is dropped at the
		// source, counted, so reliable traffic keeps its credits. Send
		// consumes the caller's reference on every path, shed included.
		msg.releaseFrom(pe.id)
		return nil
	}
	target := m.pes[dst]
	if target.node == pe.node {
		if obs.On() {
			mSendLocal.Inc(pe.id)
			mSendBytes.Add(pe.id, int64(msg.Bytes))
		}
		target.enqueue(msg)
		return nil
	}
	msg.destLocal = target.local
	if obs.On() {
		mSendRemote.Inc(pe.id)
		mSendBytes.Add(pe.id, int64(msg.Bytes))
	}
	if agg := pe.node.agg; agg != nil && !msg.NoAgg && agg.Eligible(msg.Bytes) {
		return pe.sendAggregated(target, msg)
	}
	if msg.Bytes > RendezvousThreshold {
		if obs.On() {
			mSendRzv.Inc(pe.id)
		}
		return pe.sendRendezvous(target, msg)
	}
	return pe.sendDirect(target, msg)
}

// sendDirect injects one message on its own: the pre-aggregation eager
// path, also the fallback when the aggregator has closed.
func (pe *PE) sendDirect(target *PE, msg *Message) error {
	m := pe.node.machine
	ctx := pe.node.contexts[pe.local%len(pe.node.contexts)]
	var err error
	if msg.Bytes <= pami.ShortLimit {
		if obs.On() {
			mSendImmediate.Inc(pe.id)
		}
		err = ctx.SendImmediate(target.node.rank, target.local, m.dispConverse, msg, msg.Bytes)
	} else {
		err = ctx.Send(target.node.rank, target.local, m.dispConverse, msg, msg.Bytes, nil)
	}
	if err != nil {
		// Inject refused (endpoints shut down mid-send): the message will
		// never be delivered, so nobody downstream releases it. Send
		// consumes the reference here too.
		msg.releaseFrom(pe.id)
	}
	return err
}

// run is the CsdScheduler loop with the optimized idle poll (§III-D): spin
// briefly on the queue's L2 counters, advance the network when this PE is
// responsible for it, then block on the wakeup unit.
func (pe *PE) run(initPE func(pe *PE)) {
	m := pe.node.machine
	defer m.wg.Done()
	defer func() {
		// Last PE out closes the node's halted channel, the signal
		// recovery waits on before touching the node's state.
		if pe.node.exited.Add(1) == int32(len(pe.node.pes)) {
			pe.node.haltOnce.Do(func() { close(pe.node.halted) })
		}
	}()
	if initPE != nil {
		initPE(pe)
	}
	selfAdvance := m.cfg.Mode != ModeSMPComm
	myCtx := pe.node.contexts[pe.local%len(pe.node.contexts)]
	// The scheduler pulls only enough messages to keep its priority queue
	// primed. Pulling everything would drain the lockless queue into an
	// unbounded heap — with flow control armed that moves the backlog out
	// of the structure producers park on (backpressure never reaches
	// them), and under burst arrival (aggregated batches land 64 messages
	// per dispatch) it turns every pop into an O(log backlog) heap walk.
	// Bounded, the heap stays at scheduling-window size: priorities still
	// reorder a meaningful window of pending work, and FIFO order within a
	// priority is unchanged because pull order is arrival order.
	const idleSpins = 64
	spins := 0
	for !m.stopped.Load() && !pe.node.dead.Load() {
		progressed := false
		// Pull available messages into the local priority queue, then run
		// the best one.
		for pe.sched.len() < schedPullBound {
			v, ok := pe.queue.Dequeue()
			if !ok {
				break
			}
			pe.sched.push(v.(*Message))
		}
		// Invoke a short burst between network advances: one Advance per
		// message (a context TryLock plus an empty poll, usually) costs more
		// than the dispatch it's amortizing once batches land 64 messages at
		// a time. The burst is short enough that priority arrivals and the
		// stop flag are still observed promptly.
		for i := 0; i < schedInvokeBurst && pe.sched.len() > 0; i++ {
			if m.stopped.Load() || pe.node.dead.Load() {
				break
			}
			pe.invoke(pe.sched.pop())
			progressed = true
		}
		if selfAdvance {
			if myCtx.Advance() > 0 {
				progressed = true
			}
		}
		if progressed {
			spins = 0
			continue
		}
		// Adaptive flush: an idle scheduler has nothing to gain from
		// waiting out MaxDelay — tighten the effective delay to zero so
		// latency-sensitive request/response traffic (ping-pong) pays no
		// batching penalty. Pending()==0 makes this one atomic load on the
		// common empty path.
		if agg := pe.node.agg; agg != nil && agg.Pending() > 0 {
			agg.FlushAll(aggregate.FlushIdle)
		}
		pe.idles.Add(1)
		if obs.On() {
			mSchedIdle.Inc(pe.id)
		}
		spins++
		if spins < idleSpins {
			// Idle poll: on hardware this spins on the queue's L2 atomic
			// counter (~60-cycle loads), leaving the core to active threads.
			// Yield so co-scheduled PEs get the core, the same effect.
			runtime.Gosched()
			continue
		}
		spins = 0
		if obs.On() {
			mSchedBlock.Inc(pe.id)
		}
		pe.wake.Wait()
	}
	// Drain-free exit: remaining messages are dropped at shutdown, like
	// CsdExitScheduler.
}

// schedPullBound caps the scheduler's priority-queue depth when flow
// control is armed. Deep enough that priorities still reorder a meaningful
// window of work; shallow enough that backpressure reaches producers.
const schedPullBound = 64

// schedInvokeBurst is how many scheduled messages run between network
// advances. Small enough that incoming traffic and shutdown are noticed
// within a few handler executions, large enough to amortize the advance.
const schedInvokeBurst = 8

func (pe *PE) invoke(msg *Message) {
	m := pe.node.machine
	if msg.Handler < 0 || msg.Handler >= len(m.handlers) {
		panic(fmt.Sprintf("converse: PE %d received unknown handler %d", pe.id, msg.Handler))
	}
	if d := pe.throttleNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	pe.executed.Add(1)
	if obs.On() {
		mDeliver.Inc(pe.id)
		if msg.enqNS != 0 {
			mDeliverNS.Observe(pe.id, time.Now().UnixNano()-msg.enqNS)
		}
	}
	// Capture the deferred-credit routing before the handler runs: a
	// handler that Retains and Releases on another goroutine could recycle
	// the envelope the instant it returns, and credit accounting must not
	// read scrubbed fields.
	viaNet, fromNode := msg.viaNet, msg.fromNode
	m.handlers[msg.Handler](pe, msg)
	if viaNet && m.fc != nil {
		// Deferred credit release: the message is fully executed, its
		// scheduler-queue slot and buffer are free — now the sender may
		// put another one in flight.
		m.fc.Window(fromNode, pe.node.rank).Release(1)
	}
	// Release-after-execute, strictly after the deferred credit release:
	// the envelope must not recycle while its credit is still charged. A
	// release on a non-owning PE is the §III-B lockless remote free.
	msg.releaseFrom(pe.id)
}

// schedq is the PE's local scheduling window. Messages at the default
// priority (Prio == 0, the overwhelming majority) sit in a FIFO ring and
// pay no comparisons; only explicitly prioritized messages go through heap
// maintenance. Pop order is identical to a single (Prio, seq) heap: the
// heap holds only non-zero priorities, so the front of the FIFO and the
// top of the heap never tie and the winner is decided by priority alone,
// while order within each structure is arrival order.
type schedq struct {
	fifo []*Message // Prio == 0, arrival order
	head int        // index of the FIFO front
	heap msgHeap    // Prio != 0, ordered by (Prio, seq)
	seq  uint64     // arrival stamp for the heap's FIFO tie-break
}

func (q *schedq) push(msg *Message) {
	if msg.Prio == 0 {
		q.fifo = append(q.fifo, msg)
		return
	}
	msg.seq = q.seq
	q.seq++
	heap.Push(&q.heap, msg)
}

func (q *schedq) len() int { return len(q.fifo) - q.head + len(q.heap) }

func (q *schedq) pop() *Message {
	if q.head < len(q.fifo) && (len(q.heap) == 0 || q.heap[0].Prio > 0) {
		msg := q.fifo[q.head]
		q.fifo[q.head] = nil
		q.head++
		if q.head == len(q.fifo) {
			q.fifo = q.fifo[:0]
			q.head = 0
		}
		return msg
	}
	return heap.Pop(&q.heap).(*Message)
}

// msgHeap orders messages by (Prio, seq): Charm++'s prioritized scheduler
// queue with FIFO tie-break.
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Prio != h[j].Prio {
		return h[i].Prio < h[j].Prio
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return v
}
