package converse

import (
	"sync/atomic"

	"blueq/internal/mempool"
)

// Pooled message-envelope lifecycle (paper §III-B).
//
// Every PE owns a typed envelope pool; the steady-state send→execute path
// allocates nothing. The ownership contract:
//
//   - pe.NewMessage() returns an envelope with one reference, owned by
//     pe's pool. It must be called from pe's scheduler goroutine (init
//     closures and handlers qualify); other goroutines use
//     Machine.NewMessage, which returns an unpooled heap envelope.
//   - Send / Broadcast / BroadcastOthers consume the caller's reference,
//     on every path — success, shed, and error. After handing a message
//     to the runtime the caller must not touch it again unless it took
//     its own reference with Retain first.
//   - The scheduler releases the executing reference after the handler
//     returns (release-after-execute), and after the deferred
//     flow-control credit release, so the credit never outlives its
//     envelope accounting. A handler that wants the message (or its
//     Payload) past its own return calls msg.Retain() and later
//     msg.Release().
//   - When the last reference drops, the envelope is scrubbed — every
//     public field plus the internal seq/enqNS/viaNet/destLocal/fromNode
//     bookkeeping — and recycled to its owner's pool. A release on a
//     non-owning PE is the paper's lockless remote free: one bounded
//     load-increment enqueue onto the owner's L2 ring.
//
// Plain &Message{} literals remain valid: they are unpooled, their
// Retain/Release are no-ops, and the GC reclaims them — the pre-pool
// behavior. Config.EnvPoolThreshold < 0 turns every envelope into that
// kind, which is the before/after lever cmd/memalloc -runtime measures.

// NewMessage returns a message envelope drawn from this PE's §III-B pool
// (falling back to the heap on a pool miss or when pooling is disabled),
// holding one reference. Must be called from this PE's scheduler
// goroutine: the pool dequeue is single-consumer.
func (pe *PE) NewMessage() *Message {
	ep := pe.node.machine.envPool
	if ep == nil {
		return &Message{}
	}
	msg := ep.Get(pe.id)
	msg.mp = ep
	msg.owner = int32(pe.id)
	atomic.StoreInt32(&msg.refs, 1)
	return msg
}

// NewMessage returns a fresh unpooled envelope. It is the constructor for
// code running off any PE's scheduler goroutine — machine setup before
// Start, comm-thread sends — where the single-consumer pool Get would
// race the owning PE. Retain/Release on it are no-ops; the GC reclaims
// it.
func (m *Machine) NewMessage() *Message { return &Message{} }

// Pooled reports whether the envelope came from a PE pool and is subject
// to the Retain/Release lifecycle.
func (msg *Message) Pooled() bool { return msg.mp != nil }

// Retain takes an additional reference on a pooled envelope, keeping it
// (and the fields it carries) alive past the scheduler's
// release-after-execute. No-op on unpooled envelopes. Returns msg for
// chaining.
func (msg *Message) Retain() *Message {
	if msg.mp != nil {
		atomic.AddInt32(&msg.refs, 1)
	}
	return msg
}

// Release drops one reference; the last release scrubs the envelope and
// recycles it to its owner's pool. Releasing more times than retained
// panics (before the envelope is reused — a stale release after reuse is
// undetectable, which is why the contract is strict). No-op on unpooled
// envelopes.
func (msg *Message) Release() { msg.releaseFrom(-1) }

// releaseFrom is Release with the calling PE's id for local/remote free
// attribution; tid -1 means a non-PE goroutine.
func (msg *Message) releaseFrom(tid int) {
	if msg.mp == nil {
		return
	}
	n := atomic.AddInt32(&msg.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("converse: Message released more times than retained")
	}
	mp, owner := msg.mp, msg.owner
	// Scrub everything except the pool identity, so a recycled envelope
	// carries no bookkeeping (seq, enqNS, viaNet, destLocal, fromNode),
	// no payload reference pinning user memory, and refs == 0 — which is
	// what lets a double release trip the panic above instead of
	// corrupting the next owner's count.
	*msg = Message{mp: mp, owner: owner}
	mp.Put(tid, int(owner), msg)
}

// CopyFrom copies the user-visible envelope fields of src — handler,
// source, modelled size, priority, the payload reference, the
// best-effort and no-aggregation flags — plus the destination worker
// routing, onto msg. The internal bookkeeping (seq, enqNS, viaNet,
// fromNode, the refcount and pool identity) is deliberately NOT copied:
// a clone is a new envelope with its own lifetime, and inheriting the
// parent's enqueue timestamp would skew the deliver-latency histogram
// (the old broadcast wholesale struct copy did exactly that).
func (msg *Message) CopyFrom(src *Message) {
	msg.Handler = src.Handler
	msg.SrcPE = src.SrcPE
	msg.Bytes = src.Bytes
	msg.Prio = src.Prio
	msg.Payload = src.Payload
	msg.BestEffort = src.BestEffort
	msg.NoAgg = src.NoAgg
	msg.destLocal = src.destLocal
}

// newEnvPool builds the machine's envelope pool per the config:
// EnvPoolThreshold < 0 disables pooling, 0 selects the default spill
// threshold.
func newEnvPool(cfg *Config, numPEs int) *mempool.EnvPool[Message] {
	if cfg.EnvPoolThreshold < 0 {
		return nil
	}
	return mempool.NewEnvPool[Message](numPEs, cfg.EnvPoolThreshold)
}

// EnvelopePool exposes the machine's envelope pool (nil when disabled) so
// tests and diagnostics can read its hit/miss/remote-free statistics.
func (m *Machine) EnvelopePool() *mempool.EnvPool[Message] { return m.envPool }
