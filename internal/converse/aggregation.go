package converse

import (
	"blueq/internal/aggregate"
)

// Converse wiring for the TRAM-style aggregation layer (internal/aggregate).
//
// Sender side: PE.Send diverts small remote messages into the node's
// per-destination batch buffers. Flow-control credits are charged per
// message at append time — the batch envelope itself rides credit-exempt
// on dispAggBatch — and released per message when the destination PE
// executes it (the same deferred-release point as unaggregated converse
// traffic), so the window bounds the consumer's backlog identically
// whether messages travel alone or batched.
//
// Receiver side: one dispatch unpacks the whole batch and enqueues each
// inner message on its destination worker's scheduler queue — one PAMI
// inject, one reliability sequence number, and one dispatch cover N
// messages. The reliability sublayer sequences and dedups the batch as a
// single packet, so drop/dup repair needs no per-inner-message state.
//
// Envelope recycling: a batch's Items are pooled envelopes owned by the
// sending node's PEs. Unpacking enqueues them on destination schedulers,
// whose release-after-execute recycles each one to its owner's pool (a
// lockless §III-B remote free) — the batch container itself recycles
// separately through the aggregator's free list below. Items appended to
// a batch that is later Discarded (node halt) are dropped to the GC with
// the batch, the fail-stop fate of packets in a dead node's FIFOs.

// initAggregator builds the node's aggregator. The flush callback injects
// the batch through context 0 on dispAggBatch; flushes run on worker PEs
// (full, idle, explicit) or timer goroutines (MaxDelay), both of which the
// PAMI layer already tolerates — reliability retransmissions inject from
// timers the same way.
func (n *SMPNode) initAggregator(cfg aggregate.Config) {
	m := n.machine
	n.agg = aggregate.New(cfg, n.rank, m.cfg.Nodes, n.alloc, func(dst int, b *aggregate.Batch) {
		// A failed inject (endpoints shut down mid-flush) drops the batch,
		// the same fail-stop fate as packets in a dead node's FIFOs.
		_ = n.contexts[0].Send(dst, 0, m.dispAggBatch, b, b.WireBytes(), nil)
	})
	n.aggProgress = func() {
		n.agg.FlushAll(aggregate.FlushExplicit)
		for _, nd := range m.nodes {
			for _, ctx := range nd.contexts {
				ctx.Advance()
			}
		}
	}
}

// sendAggregated buffers one small remote message. The credit is acquired
// here, before the append: a buffered message already occupies its slot in
// the destination's backlog bound. The progress closure run while parked
// flushes this node's own buffers — without that, a window fully consumed
// by messages sitting in our buffer could never drain itself.
func (pe *PE) sendAggregated(target *PE, msg *Message) error {
	node := pe.node
	m := node.machine
	dst := target.node.rank
	if m.fc != nil {
		m.fc.Window(node.rank, dst).Acquire(node.aggProgress)
	}
	if !node.agg.Append(dst, pe.local, msg, msg.Bytes) {
		// Aggregator closed (shutdown or halt raced the send): give the
		// credit back and take the direct path, which charges its own.
		if m.fc != nil {
			m.fc.Window(node.rank, dst).Release(1)
		}
		return pe.sendDirect(target, msg)
	}
	return nil
}

// onAggBatch is the dispAggBatch dispatch callback: unpack the batch,
// enqueue every inner message locally, and hand the batch back to the
// sender's recycle pool. Each inner message is marked viaNet so its credit
// releases when it executes — identical accounting to a message that
// travelled alone on dispConverse.
func (n *SMPNode) onAggBatch(src int, data any, bytes int) {
	b := data.(*aggregate.Batch)
	markNet := n.machine.fc != nil && src != n.rank
	if len(n.pes) == 1 {
		// Single-worker node: the whole batch lands on one scheduler queue
		// in one ring reservation and one wakeup. Items is handed to the
		// queue directly — EnqueueBatch copies into ring slots before
		// returning, so the Recycle below cannot race the consumer.
		if markNet {
			for _, it := range b.Items {
				msg := it.(*Message)
				msg.viaNet = true
				msg.fromNode = src
			}
		}
		n.pes[0].enqueueBatch(b.Items)
	} else {
		perPE := make([][]any, len(n.pes))
		for _, it := range b.Items {
			msg := it.(*Message)
			if markNet {
				msg.viaNet = true
				msg.fromNode = src
			}
			perPE[msg.destLocal] = append(perPE[msg.destLocal], msg)
		}
		for w, msgs := range perPE {
			if len(msgs) > 0 {
				n.pes[w].enqueueBatch(msgs)
			}
		}
	}
	if srcAgg := n.machine.nodes[src].agg; srcAgg != nil {
		srcAgg.Recycle(b)
	}
}

// Aggregator returns the node's aggregation layer, nil when Aggregation
// is not configured.
func (n *SMPNode) Aggregator() *aggregate.Aggregator { return n.agg }

// FlushAggregation flushes this node's open per-destination batch
// buffers. Element migration uses it so a message to the departing
// element buffered on its node reaches the wire before the home flips —
// a targeted form of Machine.FlushAggregation. No-op when aggregation is
// off.
func (n *SMPNode) FlushAggregation() {
	if n.agg != nil {
		n.agg.FlushAll(aggregate.FlushExplicit)
	}
}

// AggregationOn reports whether the aggregation layer is armed.
func (m *Machine) AggregationOn() bool {
	return len(m.nodes) > 0 && m.nodes[0].agg != nil
}

// FlushAggregation flushes every node's open batch buffers — the explicit
// flush barriers, checkpoints, and recovery quiescence waits need before
// they can trust in-flight accounting. No-op when aggregation is off.
func (m *Machine) FlushAggregation() {
	for _, node := range m.nodes {
		if node.agg != nil {
			node.agg.FlushAll(aggregate.FlushExplicit)
		}
	}
}
