package flowctl

import (
	"runtime"
	"sync/atomic"
	"time"

	"blueq/internal/obs"
)

// Window is one directed (src,dst) credit window. The fast path is a
// single atomic add when credits are available — the same predicated-
// atomic budget as an obs counter — so an uncontended sender pays almost
// nothing. When the window is exhausted the sender parks: it spins
// briefly, runs the caller-supplied progress closure (advancing PAMI
// contexts so the acks that replenish credits can land), and sleeps with
// exponential backoff, up to MaxBlock before proceeding on overdraft.
type Window struct {
	ctl      *Controller
	inflight atomic.Int64
	dead     atomic.Bool
}

// Acquire takes one credit, blocking (park-and-retry) while the window is
// exhausted. progress, if non-nil, runs between retries and should advance
// whatever machinery delivers this window's credit returns. Returns false
// only when the credit was taken on overdraft after MaxBlock — the caller
// proceeds either way; the return value is a degradation signal, not an
// error.
func (w *Window) Acquire(progress func()) bool {
	if w.dead.Load() {
		return true // transport discards traffic to dead peers; don't account
	}
	limit := w.ctl.effectiveWindow()
	if n := w.inflight.Add(1); n <= limit {
		if obs.On() {
			mCreditsAvail.Set(limit - n)
		}
		return true
	}
	w.inflight.Add(-1)
	return w.acquireSlow(progress)
}

// acquireSlow is the parked path, kept out of the inline fast path.
func (w *Window) acquireSlow(progress func()) bool {
	w.ctl.blocked.Add(1)
	w.ctl.blockedTotal.Add(1)
	mBlocked.Inc(0)
	if obs.On() {
		mState.Set(int64(w.ctl.State()))
	}
	defer func() {
		w.ctl.blocked.Add(-1)
		if obs.On() {
			mState.Set(int64(w.ctl.State()))
		}
	}()

	deadline := time.Now().Add(w.ctl.cfg.MaxBlock)
	sleep := 20 * time.Microsecond
	for spins := 0; ; spins++ {
		if w.dead.Load() {
			return true
		}
		limit := w.ctl.effectiveWindow()
		if n := w.inflight.Add(1); n <= limit {
			if obs.On() {
				mCreditsAvail.Set(limit - n)
			}
			return true
		}
		w.inflight.Add(-1)
		if progress != nil {
			progress()
		}
		if spins < 32 {
			runtime.Gosched()
			continue
		}
		if time.Now().After(deadline) {
			// Overdraft: liveness beats the bound. The credit is still
			// accounted, so the window re-tightens as acks drain.
			w.inflight.Add(1)
			mOverdraft.Inc(0)
			return false
		}
		time.Sleep(sleep)
		if sleep < time.Millisecond {
			sleep *= 2
		}
	}
}

// Release returns n credits (delivery confirmed by receiver dispatch or
// by the reliability sublayer's cumulative ack).
func (w *Window) Release(n int) {
	if n <= 0 || w.dead.Load() {
		return
	}
	w.inflight.Add(int64(-n))
}

// InFlight returns the number of credits currently held.
func (w *Window) InFlight() int64 { return w.inflight.Load() }

// Available returns the credits currently grantable (never negative).
func (w *Window) Available() int64 {
	a := w.ctl.effectiveWindow() - w.inflight.Load()
	if a < 0 {
		return 0
	}
	return a
}

// Dead reports whether the window's peer has been dropped.
func (w *Window) Dead() bool { return w.dead.Load() }

// markDead releases all credits and lets future Acquires through without
// accounting. Transient racing Releases may drive inflight negative; that
// only widens the window and the dead flag makes it moot.
func (w *Window) markDead() {
	w.dead.Store(true)
	w.inflight.Store(0)
}
