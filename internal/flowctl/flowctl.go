// Package flowctl is the runtime-wide credit-based flow-control and
// overload-protection layer. The paper's whole design rests on *bounded*
// structures — the MU injection FIFOs, the L2-atomic rings, the per-thread
// buffer pools all have fixed capacity, and the hardware grants a sender
// space before it may inject. The functional port silently escaped those
// bounds: the lockless overflow queue, the PAMI reorder buffer and the
// scheduler backlog all grew without limit when a consumer fell behind.
// This package restores the hardware's discipline in software:
//
//   - Per-(src,dst) send credits on the eager PAMI channel, the software
//     analogue of the BG/Q MU FIFO credits: a sender may hold at most
//     Window unacknowledged eager packets toward a destination. Credits
//     replenish on delivery (reliable transports: the receiver's dispatch
//     returns the credit in-process) or on the cumulative ack the
//     reliability sublayer already sends (unreliable transports: no new
//     packet kinds, the grant piggybacks on the ack horizon).
//   - Hard caps on the spill structures (lockless overflow queue, PAMI
//     reorder buffer) with sender-side park-and-retry instead of silent
//     unbounded growth — reliable traffic is never dropped.
//   - Memory-pressure signaling from the mempool arenas: soft/hard
//     watermarks shrink the granted window *before* allocation fails.
//   - Burst admission for many-to-many exchanges, so an all-to-all cannot
//     land its entire fan-in on one receiver at once.
//
// Together these form the degradation ladder, observable via obs gauges:
//
//	0 full speed   — credits flowing, no pressure
//	1 throttled    — soft watermark crossed, windows halved
//	2 shedding     — hard watermark crossed, windows quartered and
//	                 best-effort traffic dropped (counted, never silent)
//	3 blocked      — at least one sender is parked on an empty window
//	                 (backpressure has reached the source)
//
// Parking is bounded: a sender parked longer than MaxBlock proceeds on
// overdraft (counted) so a pathological cycle degrades to slow progress,
// never deadlock — graceful degradation, not collapse.
package flowctl

import (
	"sync/atomic"
	"time"
)

// Defaults. Window mirrors the MU injection FIFO depth order-of-magnitude;
// the caps are sized so a fully-parked machine holds megabytes, not
// gigabytes.
const (
	// DefaultWindow is the per-(src,dst) eager-send credit window.
	DefaultWindow = 256
	// DefaultOverflowCap bounds the lockless overflow queue per PE.
	DefaultOverflowCap = 4096
	// DefaultReorderCap bounds the PAMI reorder buffer per channel.
	DefaultReorderCap = 512
	// DefaultBurstLimit bounds in-flight m2m messages per destination PE.
	DefaultBurstLimit = 64
	// DefaultSoftWatermark is the mempool live-bytes level that shrinks
	// granted windows (ladder rung 1).
	DefaultSoftWatermark = 8 << 20
	// DefaultHardWatermark is the live-bytes level that starts shedding
	// best-effort traffic (ladder rung 2).
	DefaultHardWatermark = 32 << 20
	// DefaultMaxBlock is the longest a sender parks before proceeding on
	// overdraft.
	DefaultMaxBlock = time.Second
)

// maxDispatch bounds the exempt-dispatch table. PAMI dispatch ids in this
// runtime are small integers (converse uses 1-3, ft uses 9).
const maxDispatch = 64

// Config tunes the flow-control layer. Zero values select the defaults.
type Config struct {
	// Window is the per-(src,dst) eager-send credit window: the maximum
	// number of unacknowledged eager packets a node may hold toward one
	// destination node.
	Window int
	// OverflowCap caps each PE's lockless overflow queue; producers park
	// when it is full.
	OverflowCap int
	// ReorderCap caps the PAMI reliability reorder buffer per channel;
	// out-of-order arrivals beyond it are refused (the sender's
	// retransmission timer re-offers them once in-order space frees).
	ReorderCap int
	// BurstLimit caps in-flight many-to-many messages per destination PE.
	BurstLimit int
	// SoftWatermark and HardWatermark are mempool live-bytes thresholds:
	// crossing soft halves granted windows, crossing hard quarters them
	// and starts shedding best-effort traffic.
	SoftWatermark int64
	HardWatermark int64
	// MaxBlock bounds how long a sender parks on an exhausted window or a
	// full cap before proceeding on overdraft. Liveness beats the bound:
	// a cyclic-wait pattern degrades to one message per MaxBlock instead
	// of deadlocking.
	MaxBlock time.Duration
}

// Normalize fills zero fields with defaults and enforces cross-field
// invariants (the reorder cap must admit at least a full credit window,
// or a burst of in-flight packets arriving fully reversed could live-lock
// on retransmissions).
func (c *Config) Normalize() {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.OverflowCap <= 0 {
		c.OverflowCap = DefaultOverflowCap
	}
	if c.ReorderCap <= 0 {
		c.ReorderCap = DefaultReorderCap
	}
	if c.ReorderCap < c.Window {
		c.ReorderCap = c.Window
	}
	if c.BurstLimit <= 0 {
		c.BurstLimit = DefaultBurstLimit
	}
	if c.SoftWatermark <= 0 {
		c.SoftWatermark = DefaultSoftWatermark
	}
	if c.HardWatermark <= 0 {
		c.HardWatermark = DefaultHardWatermark
	}
	if c.HardWatermark < c.SoftWatermark {
		c.HardWatermark = c.SoftWatermark
	}
	if c.MaxBlock <= 0 {
		c.MaxBlock = DefaultMaxBlock
	}
}

// Ladder rungs reported by Controller.State.
const (
	StateFull      = 0 // full speed
	StateThrottled = 1 // soft watermark crossed: windows shrunk
	StateShedding  = 2 // hard watermark crossed: best-effort dropped
	StateBlocked   = 3 // a sender is parked on backpressure
)

// Controller owns the flow-control state of one machine: an n×n matrix of
// directed credit windows, the exempt-dispatch table, and the aggregated
// memory-pressure level feeding the degradation ladder.
type Controller struct {
	cfg      Config
	nodes    int
	windows  []Window // [src*nodes+dst]
	exempt   [maxDispatch]atomic.Bool
	deferred [maxDispatch]atomic.Bool

	// pressure holds each source's reported level; maxPressure caches the
	// max so the Acquire fast path reads one atomic.
	pressure    []atomic.Int32
	maxPressure atomic.Int32

	// blocked counts senders currently parked anywhere in the machine —
	// the signal for ladder rung 3. blockedTotal is the cumulative count
	// of park events, for tests and reports.
	blocked      atomic.Int64
	blockedTotal atomic.Int64

	shed atomic.Int64 // best-effort messages dropped while shedding
}

// NewController builds the flow-control state for a machine spanning the
// given number of nodes. cfg is normalized in place.
func NewController(cfg Config, nodes int) *Controller {
	cfg.Normalize()
	c := &Controller{
		cfg:      cfg,
		nodes:    nodes,
		windows:  make([]Window, nodes*nodes),
		pressure: make([]atomic.Int32, nodes),
	}
	for i := range c.windows {
		c.windows[i].ctl = c
	}
	return c
}

// Config returns the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// Window returns the directed credit window for eager sends src→dst.
func (c *Controller) Window(src, dst int) *Window {
	return &c.windows[src*c.nodes+dst]
}

// ExemptDispatch marks a PAMI dispatch id as control-plane traffic that
// bypasses credit accounting (heartbeats, protocol acks): gating the
// packets that *replenish* credits on the credits themselves would be a
// priority inversion. Call before traffic flows.
func (c *Controller) ExemptDispatch(id int) {
	if id >= 0 && id < maxDispatch {
		c.exempt[id].Store(true)
	}
}

// Exempt reports whether the dispatch id bypasses credit accounting.
func (c *Controller) Exempt(id int) bool {
	return id >= 0 && id < maxDispatch && c.exempt[id].Load()
}

// DeferRelease marks a dispatch id whose credits return when the layer
// above finishes *executing* the message, not when the PAMI layer
// dispatches it into a scheduler queue. Releasing at dispatch would let a
// sender refill a slow consumer's queue as fast as the queue absorbs —
// the credit window would bound only the wire, not the backlog. The
// deferring layer owns the matching Release call. Call before traffic
// flows.
func (c *Controller) DeferRelease(id int) {
	if id >= 0 && id < maxDispatch {
		c.deferred[id].Store(true)
	}
}

// Deferred reports whether the dispatch id's credits are released by the
// layer above rather than at PAMI dispatch.
func (c *Controller) Deferred(id int) bool {
	return id >= 0 && id < maxDispatch && c.deferred[id].Load()
}

// SetPressure records a source's memory-pressure level (0, 1, or 2, from
// mempool watermarks) and refreshes the cached machine-wide maximum.
func (c *Controller) SetPressure(src, level int) {
	if src < 0 || src >= len(c.pressure) {
		return
	}
	c.pressure[src].Store(int32(level))
	max := int32(0)
	for i := range c.pressure {
		if v := c.pressure[i].Load(); v > max {
			max = v
		}
	}
	c.maxPressure.Store(max)
	mPressureMax.Set(int64(max))
	mState.Set(int64(c.State()))
}

// PressureLevel returns the machine-wide maximum reported pressure.
func (c *Controller) PressureLevel() int { return int(c.maxPressure.Load()) }

// State returns the current degradation-ladder rung.
func (c *Controller) State() int {
	if c.blocked.Load() > 0 {
		return StateBlocked
	}
	return int(c.maxPressure.Load())
}

// BlockedSenders returns the number of senders currently parked.
func (c *Controller) BlockedSenders() int64 { return c.blocked.Load() }

// BlockedTotal returns the cumulative number of times any sender parked
// on an exhausted window.
func (c *Controller) BlockedTotal() int64 { return c.blockedTotal.Load() }

// TryShed reports whether a best-effort message should be dropped right
// now (ladder rung 2+), counting the drop when it says yes. Reliable
// traffic must never consult it.
func (c *Controller) TryShed(key int) bool {
	if c.maxPressure.Load() < StateShedding {
		return false
	}
	c.shed.Add(1)
	mShed.Inc(key)
	return true
}

// ShedCount returns the number of best-effort messages dropped.
func (c *Controller) ShedCount() int64 { return c.shed.Load() }

// DropPeer abandons flow control toward and from a failed node: every
// window touching it is marked dead (Acquire succeeds immediately — the
// transport discards packets to a dead node anyway) and its in-flight
// count resets, releasing any sender parked against the dead peer.
// Idempotent; the fault-tolerance layer calls it on confirmed failure.
func (c *Controller) DropPeer(rank int) {
	if rank < 0 || rank >= c.nodes {
		return
	}
	for other := 0; other < c.nodes; other++ {
		c.Window(rank, other).markDead()
		c.Window(other, rank).markDead()
	}
}

// effectiveWindow is the granted window after pressure shrinking: full at
// level 0, halved at 1, quartered at 2. Never below 1 — a zero window
// would starve the very traffic that drains the pressure.
func (c *Controller) effectiveWindow() int64 {
	w := int64(c.cfg.Window) >> c.maxPressure.Load()
	if w < 1 {
		return 1
	}
	return w
}
