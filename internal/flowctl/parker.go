package flowctl

import (
	"runtime"
	"time"
)

// ParkUntil is the shared bounded park-and-retry loop behind every
// blocking point in the flow-control layer: try the condition, spin
// briefly yielding the core, run the progress closure, then sleep with
// exponential backoff. Returns true when try succeeded, false when
// maxBlock elapsed first (the caller proceeds on overdraft — bounded
// blocking is what keeps backpressure from hardening into deadlock).
func ParkUntil(try func() bool, progress func(), maxBlock time.Duration) bool {
	if try() {
		return true
	}
	deadline := time.Now().Add(maxBlock)
	sleep := 20 * time.Microsecond
	for spins := 0; ; spins++ {
		if progress != nil {
			progress()
		}
		if spins < 32 {
			runtime.Gosched()
		} else {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(sleep)
			if sleep < time.Millisecond {
				sleep *= 2
			}
		}
		if try() {
			return true
		}
	}
}
