package flowctl

import "blueq/internal/obs"

// Observability for the flow-control layer (internal/obs). The ladder
// state, pressure and credit gauges are the operator's view of where the
// machine sits between full speed and backpressure-blocked; the counters
// localize which mechanism engaged. Shard keys are node ranks where a
// rank is available, 0 otherwise.
var (
	// mCreditsAvail is a last-observation gauge: the credits remaining on
	// the most recently acquired-from window. A saturated machine shows it
	// pinned at 0.
	mCreditsAvail = obs.NewGauge("flowctl", "credits_available")
	// mState is the degradation-ladder rung (0 full … 3 blocked).
	mState = obs.NewGauge("flowctl", "state")
	// mPressureMax is the machine-wide max mempool pressure level.
	mPressureMax = obs.NewGauge("flowctl", "mem_pressure_max")
	// mBlocked counts senders that entered the parked path.
	mBlocked = obs.NewCounter("flowctl", "credit_blocked_total", 0)
	// mOverdraft counts credits taken on overdraft after MaxBlock.
	mOverdraft = obs.NewCounter("flowctl", "credit_overdraft_total", 0)
	// mShed counts best-effort messages dropped while shedding.
	mShed = obs.NewCounter("flowctl", "shed_total", 0)
	// mBurstParked counts m2m burst sends that had to park on the
	// per-destination admission limit.
	mBurstParked = obs.NewCounter("flowctl", "burst_parked_total", 0)
)

// CountBurstParked records an m2m sender parking on burst admission; the
// m2m layer calls it so the counter lives beside the other flow metrics.
func CountBurstParked(dst int) { mBurstParked.Inc(dst) }
