package flowctl

import (
	"sync"
	"testing"
	"time"
)

func TestConfigNormalize(t *testing.T) {
	var c Config
	c.Normalize()
	if c.Window != DefaultWindow || c.OverflowCap != DefaultOverflowCap ||
		c.ReorderCap != DefaultReorderCap || c.BurstLimit != DefaultBurstLimit ||
		c.SoftWatermark != DefaultSoftWatermark || c.HardWatermark != DefaultHardWatermark ||
		c.MaxBlock != DefaultMaxBlock {
		t.Fatalf("zero config did not pick defaults: %+v", c)
	}

	// The reorder cap must admit a full credit window.
	c = Config{Window: 1024, ReorderCap: 16}
	c.Normalize()
	if c.ReorderCap != 1024 {
		t.Fatalf("ReorderCap = %d, want raised to Window 1024", c.ReorderCap)
	}

	// Hard watermark can never sit below soft.
	c = Config{SoftWatermark: 100 << 20, HardWatermark: 1 << 20}
	c.Normalize()
	if c.HardWatermark != c.SoftWatermark {
		t.Fatalf("HardWatermark = %d below soft %d", c.HardWatermark, c.SoftWatermark)
	}
}

func TestWindowAcquireRelease(t *testing.T) {
	ctl := NewController(Config{Window: 4, MaxBlock: 50 * time.Millisecond}, 2)
	w := ctl.Window(0, 1)
	for i := 0; i < 4; i++ {
		if !w.Acquire(nil) {
			t.Fatalf("acquire %d should have credit", i)
		}
	}
	if w.Available() != 0 {
		t.Fatalf("Available = %d, want 0", w.Available())
	}

	// A fifth acquire parks; a concurrent release unblocks it.
	done := make(chan bool, 1)
	go func() { done <- w.Acquire(nil) }()
	select {
	case <-done:
		t.Fatal("acquire succeeded with no credits")
	case <-time.After(2 * time.Millisecond):
	}
	w.Release(1)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("unblocked acquire reported overdraft")
		}
	case <-time.After(time.Second):
		t.Fatal("release did not unblock the parked acquire")
	}
}

func TestWindowOverdraftAfterMaxBlock(t *testing.T) {
	ctl := NewController(Config{Window: 1, MaxBlock: 5 * time.Millisecond}, 2)
	w := ctl.Window(0, 1)
	w.Acquire(nil)
	start := time.Now()
	if w.Acquire(nil) {
		t.Fatal("second acquire should be an overdraft")
	}
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("overdraft granted after %v, want ~MaxBlock", e)
	}
	if w.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2 (overdraft still accounted)", w.InFlight())
	}
}

func TestPressureShrinksWindow(t *testing.T) {
	ctl := NewController(Config{Window: 8}, 2)
	if got := ctl.effectiveWindow(); got != 8 {
		t.Fatalf("effectiveWindow = %d, want 8", got)
	}
	ctl.SetPressure(0, 1)
	if got := ctl.effectiveWindow(); got != 4 {
		t.Fatalf("soft pressure: effectiveWindow = %d, want 4", got)
	}
	if ctl.State() != StateThrottled {
		t.Fatalf("State = %d, want throttled", ctl.State())
	}
	ctl.SetPressure(1, 2)
	if got := ctl.effectiveWindow(); got != 2 {
		t.Fatalf("hard pressure: effectiveWindow = %d, want 2", got)
	}
	if ctl.State() != StateShedding {
		t.Fatalf("State = %d, want shedding", ctl.State())
	}
	// Clearing one source keeps the max of the others.
	ctl.SetPressure(1, 0)
	if got := ctl.PressureLevel(); got != 1 {
		t.Fatalf("PressureLevel = %d, want 1", got)
	}
	ctl.SetPressure(0, 0)
	if ctl.State() != StateFull {
		t.Fatalf("State = %d, want full", ctl.State())
	}
}

func TestTryShedOnlyUnderHardPressure(t *testing.T) {
	ctl := NewController(Config{}, 2)
	if ctl.TryShed(0) {
		t.Fatal("shed at full speed")
	}
	ctl.SetPressure(0, 1)
	if ctl.TryShed(0) {
		t.Fatal("shed while merely throttled")
	}
	ctl.SetPressure(0, 2)
	if !ctl.TryShed(0) {
		t.Fatal("no shed under hard pressure")
	}
	if ctl.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", ctl.ShedCount())
	}
}

func TestDropPeerReleasesParkedSenders(t *testing.T) {
	ctl := NewController(Config{Window: 1, MaxBlock: 10 * time.Second}, 3)
	w := ctl.Window(0, 2)
	w.Acquire(nil)
	done := make(chan struct{})
	go func() {
		w.Acquire(nil)
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	ctl.DropPeer(2)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("DropPeer did not release the parked sender")
	}
	if !w.Dead() || !ctl.Window(2, 0).Dead() {
		t.Fatal("windows touching the dead peer should be marked dead")
	}
	if ctl.Window(0, 1).Dead() {
		t.Fatal("window between survivors marked dead")
	}
	// Future acquires toward the dead peer pass without accounting.
	if !w.Acquire(nil) || w.InFlight() != 0 {
		t.Fatalf("dead window should grant without accounting (inflight=%d)", w.InFlight())
	}
}

func TestExemptDispatch(t *testing.T) {
	ctl := NewController(Config{}, 2)
	if ctl.Exempt(9) {
		t.Fatal("dispatch 9 exempt before registration")
	}
	ctl.ExemptDispatch(9)
	if !ctl.Exempt(9) {
		t.Fatal("dispatch 9 not exempt after registration")
	}
	ctl.ExemptDispatch(-1)  // out of range: ignored
	ctl.ExemptDispatch(999) // out of range: ignored
	if ctl.Exempt(-1) || ctl.Exempt(999) {
		t.Fatal("out-of-range dispatch ids reported exempt")
	}
}

func TestWindowConcurrentAcquireRelease(t *testing.T) {
	ctl := NewController(Config{Window: 16, MaxBlock: 30 * time.Second}, 2)
	w := ctl.Window(0, 1)
	const (
		producers = 8
		perProd   = 500
	)
	var wg sync.WaitGroup
	wg.Add(2 * producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				w.Acquire(nil)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for w.InFlight() == 0 {
					time.Sleep(10 * time.Microsecond)
				}
				w.Release(1)
			}
		}()
	}
	wg.Wait()
	if got := w.InFlight(); got < 0 || got > 16 {
		t.Fatalf("InFlight = %d after balanced acquire/release, want within [0,16]", got)
	}
}

func TestParkUntil(t *testing.T) {
	n := 0
	ok := ParkUntil(func() bool { n++; return n >= 3 }, nil, time.Second)
	if !ok || n != 3 {
		t.Fatalf("ParkUntil ok=%v n=%d, want success on third try", ok, n)
	}
	progressed := 0
	ok = ParkUntil(func() bool { return false }, func() { progressed++ }, 5*time.Millisecond)
	if ok {
		t.Fatal("ParkUntil succeeded on always-false condition")
	}
	if progressed == 0 {
		t.Fatal("progress closure never ran while parked")
	}
}
