// Package fft provides one-dimensional complex-to-complex fast Fourier
// transforms for arbitrary lengths: mixed-radix Cooley-Tukey for smooth
// sizes (the PME grids 216, 864, 1080 factor into 2·3·5) and Bluestein's
// chirp-z algorithm for large prime factors.
//
// It is the serial kernel under internal/fft3d's pencil-decomposed 3D FFT
// and internal/pme, standing in for the ESSL/FFTW library NAMD links
// against on Blue Gene/Q.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// Plan holds precomputed twiddle factors for transforms of one length.
// Plans are safe for concurrent use by multiple goroutines once created.
type Plan struct {
	n  int
	tw []complex128 // tw[t] = exp(-2πi t/n)

	// Bluestein state (nil unless n has a prime factor > naiveLimit)
	blu *bluestein
}

// naiveLimit is the largest prime factor transformed by direct DFT before
// switching to Bluestein.
const naiveLimit = 61

var planCache sync.Map // int -> *Plan

// NewPlan returns a plan for length n (n >= 1). Plans are cached globally;
// repeated calls with the same n return the same plan.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid length %d", n)
	}
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan), nil
	}
	p := &Plan{n: n, tw: make([]complex128, n)}
	for t := 0; t < n; t++ {
		s, c := math.Sincos(-2 * math.Pi * float64(t) / float64(n))
		p.tw[t] = complex(c, s)
	}
	if f := largestPrimeFactor(n); f > naiveLimit {
		p.blu = newBluestein(n)
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}

// MustPlan is NewPlan for known-good lengths; it panics on error.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

func largestPrimeFactor(n int) int {
	largest := 1
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			largest = f
			n /= f
		}
	}
	if n > 1 && n > largest {
		largest = n
	}
	return largest
}

func smallestFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// Forward computes the unnormalized forward DFT of x in place.
// X[k] = Σ x[j]·exp(-2πi jk/n). len(x) must equal Len().
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the inverse DFT of x in place, scaled by 1/n, so that
// Inverse(Forward(x)) == x.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d != plan length %d", len(x), p.n))
	}
	if inverse {
		// Conjugate trick: IDFT(x) = conj(DFT(conj(x))) (unscaled).
		conjugate(x)
		p.transform(x, false)
		conjugate(x)
		return
	}
	if p.blu != nil {
		p.blu.transform(x)
		return
	}
	out := p.rec(x)
	copy(x, out)
}

func conjugate(x []complex128) {
	for i, v := range x {
		x[i] = cmplx.Conj(v)
	}
}

// rec is the recursive mixed-radix decimation-in-time transform; it returns
// a freshly allocated output (inputs of recursive calls are strided views
// copied out, so allocation is unavoidable in this formulation and the
// per-call slices are small).
func (p *Plan) rec(x []complex128) []complex128 {
	return recHelper(x, p.n, p.tw, p.n)
}

// recHelper transforms x of length n, with twiddles tw defined for root
// length rootN (tw[t] = exp(-2πi t/rootN)); n must divide rootN.
func recHelper(x []complex128, n int, tw []complex128, rootN int) []complex128 {
	if n == 1 {
		return []complex128{x[0]}
	}
	r := smallestFactor(n)
	if r == n {
		// Prime length: direct DFT (small primes only; Bluestein handles
		// large primes at the top level).
		out := make([]complex128, n)
		step := rootN / n
		for k := 0; k < n; k++ {
			var sum complex128
			for j := 0; j < n; j++ {
				sum += x[j] * tw[(j*k*step)%rootN]
			}
			out[k] = sum
		}
		return out
	}
	m := n / r
	// Decimate: sub[j][k] = x[k*r+j], transform each recursively.
	subs := make([][]complex128, r)
	buf := make([]complex128, n)
	for j := 0; j < r; j++ {
		sub := buf[j*m : (j+1)*m]
		for k := 0; k < m; k++ {
			sub[k] = x[k*r+j]
		}
		subs[j] = recHelper(sub, m, tw, rootN)
	}
	// Combine: X[k] = Σ_j tw[j*k] · Y_j[k mod m].
	out := make([]complex128, n)
	step := rootN / n
	for k := 0; k < n; k++ {
		var sum complex128
		km := k % m
		for j := 0; j < r; j++ {
			sum += subs[j][km] * tw[(j*k*step)%rootN]
		}
		out[k] = sum
	}
	return out
}

// ---------------------------------------------------------------------------
// Bluestein chirp-z for large prime lengths

type bluestein struct {
	n     int
	m     int // power of two >= 2n-1
	chirp []complex128
	fb    []complex128 // forward transform of the chirp filter
	plan  *Plan        // power-of-two plan of length m
}

func newBluestein(n int) *bluestein {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := &bluestein{n: n, m: m, chirp: make([]complex128, n)}
	for k := 0; k < n; k++ {
		// exp(-iπ k²/n); reduce k² mod 2n to keep the argument accurate.
		t := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(-math.Pi * float64(t) / float64(n))
		b.chirp[k] = complex(c, s)
	}
	b.plan = MustPlan(m) // power of two: no recursion into Bluestein
	fb := make([]complex128, m)
	fb[0] = cmplx.Conj(b.chirp[0])
	for k := 1; k < n; k++ {
		fb[k] = cmplx.Conj(b.chirp[k])
		fb[m-k] = cmplx.Conj(b.chirp[k])
	}
	b.plan.Forward(fb)
	b.fb = fb
	return b
}

func (b *bluestein) transform(x []complex128) {
	fa := make([]complex128, b.m)
	for k := 0; k < b.n; k++ {
		fa[k] = x[k] * b.chirp[k]
	}
	b.plan.Forward(fa)
	for i := range fa {
		fa[i] *= b.fb[i]
	}
	b.plan.Inverse(fa)
	for k := 0; k < b.n; k++ {
		x[k] = fa[k] * b.chirp[k]
	}
}

// ---------------------------------------------------------------------------
// Convenience wrappers

// Forward transforms x in place with a cached plan.
func Forward(x []complex128) { MustPlan(len(x)).Forward(x) }

// Inverse inverse-transforms x in place (scaled) with a cached plan.
func Inverse(x []complex128) { MustPlan(len(x)).Inverse(x) }

// DFTNaive computes the DFT directly in O(n²); reference for tests.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			s, c := math.Sincos(ang)
			sum += x[j] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}
