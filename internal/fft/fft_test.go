package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

// The sizes exercised by the paper: FFT benchmark grids (32, 64, 128) and
// PME grid dimensions (216, 864, 1080), plus primes and odd sizes.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 27, 32, 60, 64, 97, 101, 128, 216, 243, 360, 864, 1080}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, n := range testSizes {
		if n > 400 {
			continue // O(n²) reference too slow to be worth it beyond this
		}
		x := randVec(n, int64(n))
		want := DFTNaive(x)
		got := append([]complex128(nil), x...)
		Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range testSizes {
		x := randVec(n, int64(2*n+1))
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		if e := maxErr(x, y); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, e)
		}
	}
}

// Parseval: Σ|x|² == Σ|X|²/n.
func TestParseval(t *testing.T) {
	for _, n := range []int{8, 27, 64, 216, 1080} {
		x := randVec(n, 7)
		var eTime float64
		for _, v := range x {
			eTime += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var eFreq float64
		for _, v := range x {
			eFreq += real(v)*real(v) + imag(v)*imag(v)
		}
		eFreq /= float64(n)
		if math.Abs(eTime-eFreq) > 1e-8*eTime {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, eTime, eFreq)
		}
	}
}

// Linearity: F(a·x + y) == a·F(x) + F(y).
func TestLinearity(t *testing.T) {
	const n = 96
	x := randVec(n, 8)
	y := randVec(n, 9)
	a := complex(2.5, -1.25)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a*x[i] + y[i]
	}
	Forward(sum)
	Forward(x)
	Forward(y)
	want := make([]complex128, n)
	for i := range want {
		want[i] = a*x[i] + y[i]
	}
	if e := maxErr(sum, want); e > 1e-9 {
		t.Errorf("linearity error %g", e)
	}
}

// An impulse transforms to a constant; a constant transforms to an impulse.
func TestImpulseAndConstant(t *testing.T) {
	const n = 40
	imp := make([]complex128, n)
	imp[0] = 1
	Forward(imp)
	for i, v := range imp {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", i, v)
		}
	}
	con := make([]complex128, n)
	for i := range con {
		con[i] = 1
	}
	Forward(con)
	if cmplx.Abs(con[0]-complex(n, 0)) > 1e-9 {
		t.Fatalf("DC bin = %v", con[0])
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(con[i]) > 1e-9 {
			t.Fatalf("non-DC bin %d = %v", i, con[i])
		}
	}
}

// Time shift ↔ phase ramp: F(x shifted by s)[k] = F(x)[k]·exp(-2πi sk/n).
func TestShiftTheorem(t *testing.T) {
	const n = 54
	const s = 5
	x := randVec(n, 10)
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[(i-s+n)%n]
	}
	Forward(x)
	Forward(shifted)
	for k := 0; k < n; k++ {
		ang := -2 * math.Pi * float64(s*k) / float64(n)
		sn, cs := math.Sincos(ang)
		want := x[k] * complex(cs, sn)
		if cmplx.Abs(shifted[k]-want) > 1e-9 {
			t.Fatalf("shift theorem fails at bin %d", k)
		}
	}
}

func TestBluesteinUsedForLargePrimes(t *testing.T) {
	p := MustPlan(127) // prime > naiveLimit
	if p.blu == nil {
		t.Fatal("prime 127 did not select Bluestein")
	}
	q := MustPlan(128)
	if q.blu != nil {
		t.Fatal("power of two selected Bluestein")
	}
	x := randVec(127, 11)
	want := DFTNaive(x)
	p.Forward(x)
	if e := maxErr(x, want); e > 1e-8 {
		t.Fatalf("Bluestein error %g", e)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Fatal("NewPlan(0) accepted")
	}
	if _, err := NewPlan(-3); err == nil {
		t.Fatal("NewPlan(-3) accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MustPlan(8).Forward(make([]complex128, 4))
}

func TestPlanCacheReturnsSame(t *testing.T) {
	a := MustPlan(48)
	b := MustPlan(48)
	if a != b {
		t.Fatal("plan cache returned different plans")
	}
}

func TestLargestPrimeFactor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 12: 3, 216: 3, 1080: 5, 97: 97, 4096: 2, 77: 11}
	for n, want := range cases {
		if got := largestPrimeFactor(n); got != want {
			t.Errorf("largestPrimeFactor(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: round trip holds for random sizes and inputs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(n16 uint16, seed int64) bool {
		n := int(n16)%300 + 1
		x := randVec(n, seed)
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		return maxErr(x, y) <= 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func benchSize(b *testing.B, n int) {
	p := MustPlan(n)
	x := randVec(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT128(b *testing.B)  { benchSize(b, 128) }
func BenchmarkFFT216(b *testing.B)  { benchSize(b, 216) }
func BenchmarkFFT1080(b *testing.B) { benchSize(b, 1080) }
