package mdsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"blueq/internal/md"
)

// Checkpoint support for the patch element (charm.Checkpointable). A
// checkpoint is taken between force evaluations, when the migrating atom
// records plus the evaluation counter and priming flag are the whole
// durable state; exchange buffers, coordinate caches and force scratch are
// rebuilt by the next evaluation. Raw IEEE-754 bit patterns keep restored
// trajectories bit-for-bit identical to uninterrupted ones.

const atomRecBytes = 4 + 12*8 // id + pos/vel/f/recipF vectors

// PackCheckpoint encodes the patch's atoms and evaluation cursor.
func (p *patch) PackCheckpoint() []byte {
	buf := make([]byte, 0, 16+atomRecBytes*len(p.atoms))
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	putVec := func(v md.Vec3) {
		for _, c := range v {
			putU64(math.Float64bits(c))
		}
	}
	putU64(uint64(int64(p.curEval)))
	flags := uint64(0)
	if p.primed {
		flags = 1
	}
	flags |= uint64(len(p.atoms)) << 1
	putU64(flags)
	for i := range p.atoms {
		a := &p.atoms[i]
		binary.LittleEndian.PutUint32(scratch[:4], uint32(a.id))
		buf = append(buf, scratch[:4]...)
		putVec(a.pos)
		putVec(a.vel)
		putVec(a.f)
		putVec(a.recipF)
	}
	return buf
}

// UnpackCheckpoint restores the atoms and evaluation cursor, clearing
// every per-evaluation transient.
func (p *patch) UnpackCheckpoint(data []byte) {
	if len(data) < 16 {
		panic(fmt.Sprintf("mdsim: checkpoint blob too short (%d bytes)", len(data)))
	}
	off := 0
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	vec := func() md.Vec3 {
		var v md.Vec3
		for i := range v {
			v[i] = math.Float64frombits(u64())
		}
		return v
	}
	p.curEval = int(int64(u64()))
	flags := u64()
	p.primed = flags&1 != 0
	n := int(flags >> 1)
	if len(data) != 16+atomRecBytes*n {
		panic(fmt.Sprintf("mdsim: checkpoint blob is %d bytes, want %d for %d atoms",
			len(data), 16+atomRecBytes*n, n))
	}
	p.atoms = make([]atomRec, n)
	for i := range p.atoms {
		a := &p.atoms[i]
		a.id = int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		a.pos = vec()
		a.vel = vec()
		a.f = vec()
		a.recipF = vec()
	}
	p.exchRecv = 0
	p.pending = nil
	p.cache = nil
	p.ownSet = nil
	p.newF = nil
	p.nbDone = false
	p.pmePending = false
}
