package mdsim

import (
	"math"
	"math/rand"
	"testing"

	"blueq/internal/converse"
	"blueq/internal/fft3d"
	"blueq/internal/md"
	"blueq/internal/pme"
)

func smallRuntime() converse.Config {
	return converse.Config{Nodes: 2, WorkersPerNode: 2, Mode: converse.ModeSMP}
}

func testSystem(mols int, seed int64) *md.System {
	s := md.WaterBox(md.WaterBoxConfig{Molecules: mols, Seed: seed})
	s.Thermalize(0.3, rand.New(rand.NewSource(seed+100)))
	return s
}

// Parallel prime evaluation must reproduce the serial cutoff force field:
// same energies and same per-atom forces.
func TestPrimeMatchesSerialCutoff(t *testing.T) {
	sys := testSystem(64, 1)
	nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2, EwaldBeta: 0.8}
	sim, err := New(Config{
		System: sys, Nonbonded: nb, DT: 1e-4, Steps: 0, Runtime: smallRuntime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.Run()

	serial := md.NewForces(sys.N())
	md.ComputeNonbonded(sys, nb, serial)
	md.ComputeBonded(sys, serial)

	if rel := math.Abs(rep.LJEnergy-serial.LJEnergy) / math.Abs(serial.LJEnergy); rel > 1e-10 {
		t.Fatalf("LJ %g vs serial %g", rep.LJEnergy, serial.LJEnergy)
	}
	if rel := math.Abs(rep.ElecEnergy-serial.ElecEnergy) / math.Abs(serial.ElecEnergy); rel > 1e-10 {
		t.Fatalf("elec %g vs serial %g", rep.ElecEnergy, serial.ElecEnergy)
	}
	if math.Abs(rep.BondEnergy-serial.BondEnergy) > 1e-9 || math.Abs(rep.AngleEnergy-serial.AngleEnergy) > 1e-9 {
		t.Fatalf("bonded %g/%g vs serial %g/%g", rep.BondEnergy, rep.AngleEnergy, serial.BondEnergy, serial.AngleEnergy)
	}
	pf := sim.ForcesByAtom()
	for i := range pf {
		if d := pf[i].Sub(serial.F[i]).Norm(); d > 1e-9*(1+serial.F[i].Norm()) {
			t.Fatalf("atom %d: parallel %v vs serial %v", i, pf[i], serial.F[i])
		}
	}
}

// Full trajectory equivalence against the serial integrator (cutoff-only).
func TestTrajectoryMatchesSerialCutoff(t *testing.T) {
	const steps = 10
	sysP := testSystem(40, 2)
	sysS := testSystem(40, 2)
	nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2}
	sim, err := New(Config{
		System: sysP, Nonbonded: nb, DT: 2e-4, Steps: steps, Runtime: smallRuntime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	got := sim.ExtractSystem()

	in := md.NewIntegrator(2e-4, &md.BasicForceField{Params: nb})
	for i := 0; i < steps; i++ {
		in.Step(sysS)
	}
	for i := 0; i < sysS.N(); i++ {
		d := sysS.Box.MinImage(got.Pos[i].Sub(sysS.Pos[i])).Norm()
		if d > 1e-7 {
			t.Fatalf("atom %d drifted %g from serial trajectory", i, d)
		}
		if dv := got.Vel[i].Sub(sysS.Vel[i]).Norm(); dv > 1e-6 {
			t.Fatalf("atom %d velocity differs by %g", i, dv)
		}
	}
}

// PME: parallel prime evaluation equals the serial full-Ewald force field,
// for every transport combination including the fully m2m "optimized PME".
func TestPrimeMatchesSerialPME(t *testing.T) {
	cases := []struct {
		name     string
		tr       fft3d.Transport
		exchange bool
	}{
		{"p2p", fft3d.P2P, false},
		{"m2m-fft", fft3d.M2M, false},
		{"optimized-pme", fft3d.M2M, true},
		{"m2m-exchange-only", fft3d.P2P, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys := testSystem(64, 3)
			beta := 0.8
			nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2, EwaldBeta: beta}
			grid := [3]int{16, 16, 16}
			sim, err := New(Config{
				System: sys, Nonbonded: nb, DT: 1e-4, Steps: 0,
				PME: &PMEConfig{Grid: grid, Order: 4, Beta: beta, Every: 4,
					Transport: tc.tr, ExchangeM2M: tc.exchange},
				Runtime: smallRuntime(),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := sim.Run()

			ff, err := pme.NewForceField(nb, pme.Config{Grid: grid, Order: 4, Beta: beta}, 4)
			if err != nil {
				t.Fatal(err)
			}
			serial := md.NewForces(sys.N())
			ff.Compute(sys, serial)

			if rel := math.Abs(rep.ElecEnergy-serial.ElecEnergy) / math.Abs(serial.ElecEnergy); rel > 1e-8 {
				t.Fatalf("elec %.12g vs serial %.12g (rel %g)", rep.ElecEnergy, serial.ElecEnergy, rel)
			}
			pf := sim.ForcesByAtom()
			for i := range pf {
				if d := pf[i].Sub(serial.F[i]).Norm(); d > 1e-8*(1+serial.F[i].Norm()) {
					t.Fatalf("atom %d: parallel %v vs serial %v", i, pf[i], serial.F[i])
				}
			}
			if rep.RecipEvals != 1 {
				t.Fatalf("recip evals = %d, want 1", rep.RecipEvals)
			}
		})
	}
}

// PME trajectory equivalence with multiple timestepping (PME every 4).
func TestTrajectoryMatchesSerialPME(t *testing.T) {
	const steps = 8
	sysP := testSystem(32, 4)
	sysS := testSystem(32, 4)
	beta := 0.8
	nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2, EwaldBeta: beta}
	grid := [3]int{16, 16, 16}
	sim, err := New(Config{
		System: sysP, Nonbonded: nb, DT: 2e-4, Steps: steps,
		PME: &PMEConfig{Grid: grid, Order: 4, Beta: beta, Every: 4,
			Transport: fft3d.M2M, ExchangeM2M: true}, // full optimized PME
		Runtime: converse.Config{Nodes: 2, WorkersPerNode: 2, Mode: converse.ModeSMPComm, CommThreads: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.Run()
	got := sim.ExtractSystem()

	ff, err := pme.NewForceField(nb, pme.Config{Grid: grid, Order: 4, Beta: beta}, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := md.NewIntegrator(2e-4, ff)
	for i := 0; i < steps; i++ {
		in.Step(sysS)
	}
	for i := 0; i < sysS.N(); i++ {
		d := sysS.Box.MinImage(got.Pos[i].Sub(sysS.Pos[i])).Norm()
		if d > 1e-6 {
			t.Fatalf("atom %d drifted %g from serial PME trajectory", i, d)
		}
	}
	// 9 force evaluations (prime + 8): recip at 0, 4, 8 = 3 evaluations.
	if rep.RecipEvals != 3 {
		t.Fatalf("recip evals = %d, want 3", rep.RecipEvals)
	}
}

// Atoms migrate between patches during a longer hot run; identity and
// count are conserved and every atom sits in the right patch.
func TestMigrationConservesAtoms(t *testing.T) {
	sys := testSystem(64, 5)
	sys.Thermalize(2.0, rand.New(rand.NewSource(50))) // hot: fast migration
	nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2}
	sim, err := New(Config{
		System: sys, Nonbonded: nb, DT: 5e-4, Steps: 60, Runtime: smallRuntime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.Run()
	if rep.Migrations == 0 {
		t.Fatal("no migrations in a hot 60-step run")
	}
	counts := sim.AtomsPerPatch()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != sys.N() {
		t.Fatalf("atom count %d, want %d", total, sys.N())
	}
	// Identity: every id present exactly once, in its spatial patch.
	got := sim.ExtractSystem()
	seen := make([]bool, sys.N())
	for pi := 0; pi < sim.NumPatches(); pi++ {
		p := sim.patchArr.Element(pi).(*patch)
		for _, a := range p.atoms {
			if seen[a.id] {
				t.Fatalf("atom %d owned twice", a.id)
			}
			seen[a.id] = true
			if home := sim.patchOf(a.pos); home != pi {
				t.Fatalf("atom %d in patch %d, belongs to %d", a.id, pi, home)
			}
		}
	}
	_ = got
}

// Energy conservation of the parallel integrator with PME.
func TestParallelEnergyConservation(t *testing.T) {
	sys := testSystem(32, 6)
	beta := 0.8
	nb := md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2, EwaldBeta: beta}
	mk := func(steps int) Report {
		s2 := testSystem(32, 6)
		sim, err := New(Config{
			System: s2, Nonbonded: nb, DT: 1e-4, Steps: steps,
			PME:     &PMEConfig{Grid: [3]int{16, 16, 16}, Order: 4, Beta: beta, Every: 1, Transport: fft3d.P2P},
			Runtime: smallRuntime(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	r0 := mk(20)
	r1 := mk(120)
	e0, e1 := r0.Total(), r1.Total()
	scale := math.Max(math.Abs(e0), r0.Kinetic)
	if drift := math.Abs(e1 - e0); drift > 5e-3*scale {
		t.Fatalf("energy drift %g over 100 steps (E20=%g E120=%g)", drift, e0, e1)
	}
	_ = sys
}

func TestConfigValidation(t *testing.T) {
	sys := testSystem(8, 7)
	base := Config{System: sys, Nonbonded: md.NonbondedParams{Cutoff: 4}, DT: 1e-4, Runtime: smallRuntime()}
	bad := base
	bad.DT = 0
	if _, err := New(bad); err == nil {
		t.Fatal("DT=0 accepted")
	}
	bad = base
	bad.System = nil
	if _, err := New(bad); err == nil {
		t.Fatal("nil system accepted")
	}
	bad = base
	bad.Nonbonded.Cutoff = 0
	if _, err := New(bad); err == nil {
		t.Fatal("cutoff 0 accepted")
	}
	bad = base
	bad.PatchGrid = [3]int{50, 1, 1} // patch thinner than cutoff
	if _, err := New(bad); err == nil {
		t.Fatal("sub-cutoff patches accepted")
	}
	bad = base
	bad.Nonbonded.EwaldBeta = 0.5
	bad.PME = &PMEConfig{Grid: [3]int{16, 16, 16}, Order: 4, Beta: 0.7, Every: 4}
	if _, err := New(bad); err == nil {
		t.Fatal("mismatched beta accepted")
	}
}

// Polymer chains with torsions: parallel trajectory still matches the
// serial integrator (the dihedral ownership rule is exercised when chains
// straddle patch boundaries).
func TestTrajectoryPolymerWithDihedrals(t *testing.T) {
	const steps = 8
	mk := func() *md.System {
		s := md.PolymerBox(md.PolymerBoxConfig{Chains: 9, Beads: 8, Seed: 11})
		s.Thermalize(0.3, rand.New(rand.NewSource(12)))
		return s
	}
	sysP, sysS := mk(), mk()
	nb := md.NonbondedParams{Cutoff: 3.5, SwitchDist: 2.8}
	sim, err := New(Config{
		System: sysP, Nonbonded: nb, DT: 2e-4, Steps: steps, Runtime: smallRuntime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.Run()
	if rep.DihedralEnergy == 0 {
		t.Fatal("no dihedral energy accumulated")
	}
	got := sim.ExtractSystem()

	in := md.NewIntegrator(2e-4, &md.BasicForceField{Params: nb})
	for i := 0; i < steps; i++ {
		in.Step(sysS)
	}
	for i := 0; i < sysS.N(); i++ {
		if d := sysS.Box.MinImage(got.Pos[i].Sub(sysS.Pos[i])).Norm(); d > 1e-7 {
			t.Fatalf("atom %d drifted %g from serial", i, d)
		}
	}
	if rel := math.Abs(rep.DihedralEnergy-in.Forces().DihedralEnergy) /
		math.Abs(in.Forces().DihedralEnergy); rel > 1e-9 {
		t.Fatalf("dihedral energy %g vs serial %g", rep.DihedralEnergy, in.Forces().DihedralEnergy)
	}
}

// A run on a single PE and a run on many PEs give identical physics.
func TestPECountInvariance(t *testing.T) {
	mk := func(rtc converse.Config) *md.System {
		sys := testSystem(27, 8)
		sim, err := New(Config{
			System: sys, Nonbonded: md.NonbondedParams{Cutoff: 4, SwitchDist: 3.2},
			DT: 2e-4, Steps: 5, Runtime: rtc,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return sim.ExtractSystem()
	}
	a := mk(converse.Config{Nodes: 1, WorkersPerNode: 1, Mode: converse.ModeSMP})
	b := mk(converse.Config{Nodes: 4, WorkersPerNode: 2, Mode: converse.ModeSMP})
	for i := range a.Pos {
		if d := a.Box.MinImage(a.Pos[i].Sub(b.Pos[i])).Norm(); d > 1e-8 {
			t.Fatalf("atom %d differs by %g between PE counts", i, d)
		}
	}
}
