package mdsim

import (
	"fmt"
	"math"

	"blueq/internal/charm"
	"blueq/internal/converse"
	"blueq/internal/md"
)

// atomRec is the migrating per-atom state. Static properties (charge,
// mass, LJ, bonds, exclusions) are read from the replicated System by id.
type atomRec struct {
	id     int32
	pos    md.Vec3
	vel    md.Vec3
	f      md.Vec3 // total force from the last evaluation
	recipF md.Vec3 // reciprocal-space (PME) force, reused between PME evals
}

// idPos is a coordinate broadcast entry.
type idPos struct {
	id  int32
	pos md.Vec3
}

// exchangeMsg carries migrants and coordinates from one patch to a
// neighbour for one force evaluation.
type exchangeMsg struct {
	srcPatch int
	eval     int
	migrants []atomRec
	coords   []idPos
}

// patch is one spatial cell of the decomposition: a chare array element.
type patch struct {
	sim        *Simulation
	idx        int
	ix, iy, iz int
	lo, hi     md.Vec3

	atoms     []atomRec
	neighbors []int // distinct neighbour patch indices (excl. self)

	// per-evaluation state
	curEval    int
	exchRecv   int
	pending    []*exchangeMsg // early messages for the next evaluation
	cache      []idPos        // neighbour coordinates for this evaluation
	ownSet     map[int32]int  // atom id -> index in atoms (this evaluation)
	newF       []md.Vec3      // forces for this evaluation (parallel to atoms)
	nbDone     bool
	pmePending bool
	primed     bool
}

// declarePatches builds the patch array and its entries.
func (s *Simulation) declarePatches() {
	n := s.NumPatches()
	s.patchArr = s.rt.NewArray("patches", n, func(idx int) charm.Element {
		return s.newPatch(idx)
	})
	s.ePatchStep = s.patchArr.Entry(func(pe *converse.PE, el charm.Element, _ int, payload any) {
		el.(*patch).beginEval(pe, payload.(*stepMsg))
	})
	s.eExchange = s.patchArr.Entry(func(pe *converse.PE, el charm.Element, _ int, payload any) {
		el.(*patch).recvExchange(pe, payload.(*exchangeMsg))
	})
	s.ePatchPME = s.patchArr.Entry(func(pe *converse.PE, el charm.Element, _ int, payload any) {
		el.(*patch).recipReady(pe, payload.([]md.Vec3))
	})
}

func (s *Simulation) patchOf(pos md.Vec3) int {
	p := s.cfg.System.Box.Wrap(pos)
	ix := int(p[0] / s.cfg.System.Box.L[0] * float64(s.px))
	iy := int(p[1] / s.cfg.System.Box.L[1] * float64(s.py))
	iz := int(p[2] / s.cfg.System.Box.L[2] * float64(s.pz))
	if ix >= s.px {
		ix = s.px - 1
	}
	if iy >= s.py {
		iy = s.py - 1
	}
	if iz >= s.pz {
		iz = s.pz - 1
	}
	return (ix*s.py+iy)*s.pz + iz
}

func (s *Simulation) newPatch(idx int) *patch {
	// curEval = -1 so exchanges for the prime evaluation (eval 0) that
	// arrive before this patch's own beginEval are buffered, not applied.
	p := &patch{sim: s, idx: idx, curEval: -1}
	p.ix = idx / (s.py * s.pz)
	p.iy = (idx / s.pz) % s.py
	p.iz = idx % s.pz
	box := s.cfg.System.Box
	p.lo = md.Vec3{
		float64(p.ix) * box.L[0] / float64(s.px),
		float64(p.iy) * box.L[1] / float64(s.py),
		float64(p.iz) * box.L[2] / float64(s.pz),
	}
	p.hi = md.Vec3{
		float64(p.ix+1) * box.L[0] / float64(s.px),
		float64(p.iy+1) * box.L[1] / float64(s.py),
		float64(p.iz+1) * box.L[2] / float64(s.pz),
	}
	// Distinct periodic neighbours.
	seen := map[int]bool{idx: true}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				ni := ((p.ix+dx+s.px)%s.px*s.py+(p.iy+dy+s.py)%s.py)*s.pz + (p.iz+dz+s.pz)%s.pz
				if !seen[ni] {
					seen[ni] = true
					p.neighbors = append(p.neighbors, ni)
				}
			}
		}
	}
	// Initial atom assignment.
	for i, pos := range s.cfg.System.Pos {
		if s.patchOf(pos) == idx {
			p.atoms = append(p.atoms, atomRec{
				id:  int32(i),
				pos: s.cfg.System.Box.Wrap(pos),
				vel: s.cfg.System.Vel[i],
			})
		}
	}
	return p
}

// beginEval starts force evaluation msg.eval on this patch: integrate the
// first half-kick and drift (unless priming), select migrants, and send
// the exchange messages.
func (p *patch) beginEval(pe *converse.PE, msg *stepMsg) {
	s := p.sim
	p.curEval = msg.eval
	p.nbDone = false
	p.pmePending = s.isPMEEval(msg.eval)
	p.cache = p.cache[:0]

	var migrants map[int][]atomRec
	if !msg.prime {
		dt := s.cfg.DT
		kept := p.atoms[:0]
		for _, a := range p.atoms {
			m := s.cfg.System.Mass[a.id]
			a.vel = a.vel.Add(a.f.Scale(0.5 * dt / m))
			a.pos = s.cfg.System.Box.Wrap(a.pos.Add(a.vel.Scale(dt)))
			dst := s.patchOf(a.pos)
			if dst == p.idx {
				kept = append(kept, a)
				continue
			}
			if migrants == nil {
				migrants = make(map[int][]atomRec)
			}
			migrants[dst] = append(migrants[dst], a)
		}
		p.atoms = kept
	}

	// Coordinates sent include atoms migrating away: their old owner still
	// advertises them so all neighbours see every atom exactly once. The
	// old owner also keeps them in its own cache — the new owner does not
	// advertise back to us this evaluation.
	coords := make([]idPos, 0, len(p.atoms)+8)
	for _, a := range p.atoms {
		coords = append(coords, idPos{id: a.id, pos: a.pos})
	}
	for _, ms := range migrants {
		for _, a := range ms {
			coords = append(coords, idPos{id: a.id, pos: a.pos})
			p.cache = append(p.cache, idPos{id: a.id, pos: a.pos})
		}
	}

	for _, ni := range p.neighbors {
		m := &exchangeMsg{srcPatch: p.idx, eval: msg.eval, coords: coords}
		if migrants != nil {
			m.migrants = migrants[ni]
			delete(migrants, ni)
		}
		if err := s.patchArr.Send(pe, ni, s.eExchange, m, 8+24*len(coords)); err != nil {
			panic(fmt.Sprintf("mdsim: exchange send: %v", err))
		}
	}
	if len(migrants) > 0 {
		for dst := range migrants {
			panic(fmt.Sprintf("mdsim: atom moved from patch %d beyond neighbours to %d in one step", p.idx, dst))
		}
	}
	if len(p.neighbors) == 0 {
		// Single-patch runs have no exchange; compute immediately.
		p.maybeCompute(pe)
		return
	}
	// Apply exchanges that arrived before this patch entered the
	// evaluation.
	p.drainPending(pe)
}

// recvExchange handles a neighbour's migrants and coordinates. Messages
// for the next evaluation can arrive before this patch's own beginEval;
// they are buffered.
func (p *patch) recvExchange(pe *converse.PE, m *exchangeMsg) {
	if m.eval != p.curEval {
		p.pending = append(p.pending, m)
		return
	}
	p.applyExchange(pe, m)
}

func (p *patch) applyExchange(pe *converse.PE, m *exchangeMsg) {
	for _, a := range m.migrants {
		p.atoms = append(p.atoms, a)
		p.sim.migrations.Add(1)
	}
	p.cache = append(p.cache, m.coords...)
	p.exchRecv++
	if p.exchRecv == len(p.neighbors) {
		p.exchRecv = 0
		p.maybeCompute(pe)
	}
}

// maybeCompute runs once all exchanges for the evaluation have arrived.
func (p *patch) maybeCompute(pe *converse.PE) {
	s := p.sim
	// Index own atoms; drop cached entries that are now owned here (their
	// coordinates came both from the migration and the old owner's list).
	p.ownSet = make(map[int32]int, len(p.atoms))
	for i, a := range p.atoms {
		p.ownSet[a.id] = i
	}
	cache := p.cache[:0]
	for _, c := range p.cache {
		if _, mine := p.ownSet[c.id]; !mine {
			cache = append(cache, c)
		}
	}
	p.cache = cache

	p.computeForces(pe)
	p.nbDone = true
	if p.pmePending {
		s.coord(pe).stagePatch(pe, p)
		return
	}
	p.finishEval(pe)
}

// lookup returns the position of atom id from own atoms or the cache.
func (p *patch) lookup(id int32) (md.Vec3, bool) {
	if i, ok := p.ownSet[id]; ok {
		return p.atoms[i].pos, true
	}
	for _, c := range p.cache {
		if c.id == id {
			return c.pos, true
		}
	}
	return md.Vec3{}, false
}

// computeForces evaluates nonbonded (LJ + real-space Ewald), bonded and
// exclusion-correction forces for the atoms this patch owns.
func (p *patch) computeForces(pe *converse.PE) {
	s := p.sim
	sys := s.cfg.System
	nb := s.cfg.Nonbonded
	cut2 := nb.Cutoff * nb.Cutoff
	ron2 := cut2
	if nb.SwitchDist > 0 {
		ron2 = nb.SwitchDist * nb.SwitchDist
	}
	beta := nb.EwaldBeta
	if len(p.newF) < len(p.atoms) {
		p.newF = make([]md.Vec3, len(p.atoms))
	}
	p.newF = p.newF[:len(p.atoms)]
	for i := range p.newF {
		p.newF[i] = md.Vec3{}
	}
	var elj, eel, ebond, eangle, edihedral float64

	pair := func(ai int, aID int32, apos md.Vec3, bID int32, bpos md.Vec3, bOwn int) {
		if sys.IsExcluded(int(aID), int(bID)) {
			return
		}
		d := sys.Box.MinImage(apos.Sub(bpos))
		r2 := d.Norm2()
		if r2 >= cut2 || r2 == 0 {
			return
		}
		i, j := int(aID), int(bID)
		eps := math.Sqrt(sys.Eps[i] * sys.Eps[j])
		sig := 0.5 * (sys.Sigma[i] + sys.Sigma[j])
		countEnergy := bOwn >= 0 || aID < bID
		var fr float64
		if eps != 0 {
			sr2 := sig * sig / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			e := 4 * eps * (sr12 - sr6)
			dljv := 24 * eps * (2*sr12 - sr6) / r2
			sw, dsw := ljSwitchLocal(r2, ron2, cut2)
			if countEnergy {
				elj += e * sw
			}
			fr += dljv*sw - e*dsw*2
		}
		if beta > 0 {
			qq := sys.Charge[i] * sys.Charge[j]
			if qq != 0 {
				r := math.Sqrt(r2)
				er := math.Erfc(beta * r)
				if countEnergy {
					eel += qq * er / r
				}
				fr += qq * (er/r + 2*beta/math.SqrtPi*math.Exp(-beta*beta*r2)) / r2
			}
		}
		f := d.Scale(fr)
		p.newF[ai] = p.newF[ai].Add(f)
		if bOwn >= 0 {
			p.newF[bOwn] = p.newF[bOwn].Sub(f)
		}
	}

	for ai := range p.atoms {
		a := &p.atoms[ai]
		for bi := ai + 1; bi < len(p.atoms); bi++ {
			b := &p.atoms[bi]
			pair(ai, a.id, a.pos, b.id, b.pos, bi)
		}
		for _, c := range p.cache {
			pair(ai, a.id, a.pos, c.id, c.pos, -1)
		}
	}

	// Bonded terms: computed by every patch owning an endpoint, forces
	// accumulated only for owned atoms; energies counted once by the
	// canonical owner (bond: I; angle: the centre J).
	processedBonds := map[int32]bool{}
	processedAngles := map[int32]bool{}
	for _, a := range p.atoms {
		for _, bIdx := range s.bondsOf[a.id] {
			if processedBonds[bIdx] {
				continue
			}
			processedBonds[bIdx] = true
			b := sys.Bonds[bIdx]
			pi, okI := p.lookup(int32(b.I))
			pj, okJ := p.lookup(int32(b.J))
			if !okI || !okJ {
				panic(fmt.Sprintf("mdsim: bond %d (%d ok=%v, %d ok=%v) not visible from patch %d eval %d; own=%d cache=%d",
					bIdx, b.I, okI, b.J, okJ, p.idx, p.curEval, len(p.atoms), len(p.cache)))
			}
			d := sys.Box.MinImage(pi.Sub(pj))
			r := d.Norm()
			if r == 0 {
				continue
			}
			dr := r - b.R0
			fmag := -2 * b.K * dr / r
			f := d.Scale(fmag)
			if oi, ok := p.ownSet[int32(b.I)]; ok {
				p.newF[oi] = p.newF[oi].Add(f)
				ebond += b.K * dr * dr
			}
			if oj, ok := p.ownSet[int32(b.J)]; ok {
				p.newF[oj] = p.newF[oj].Sub(f)
			}
		}
		for _, aIdx := range s.anglesOf[a.id] {
			if processedAngles[aIdx] {
				continue
			}
			processedAngles[aIdx] = true
			an := sys.Angles[aIdx]
			pi, okI := p.lookup(int32(an.I))
			pj, okJ := p.lookup(int32(an.J))
			pk, okK := p.lookup(int32(an.K))
			if !okI || !okJ || !okK {
				panic(fmt.Sprintf("mdsim: angle %d atoms not visible from patch %d", aIdx, p.idx))
			}
			rij := sys.Box.MinImage(pi.Sub(pj))
			rkj := sys.Box.MinImage(pk.Sub(pj))
			lij, lkj := rij.Norm(), rkj.Norm()
			if lij == 0 || lkj == 0 {
				continue
			}
			cosT := rij.Dot(rkj) / (lij * lkj)
			cosT = math.Max(-1, math.Min(1, cosT))
			theta := math.Acos(cosT)
			dT := theta - an.Theta0
			sinT := math.Sqrt(1 - cosT*cosT)
			if sinT < 1e-8 {
				continue
			}
			c := 2 * an.Kth * dT / sinT
			fi := rkj.Scale(1 / (lij * lkj)).Sub(rij.Scale(cosT / (lij * lij))).Scale(c)
			fk := rij.Scale(1 / (lij * lkj)).Sub(rkj.Scale(cosT / (lkj * lkj))).Scale(c)
			if oi, ok := p.ownSet[int32(an.I)]; ok {
				p.newF[oi] = p.newF[oi].Add(fi)
			}
			if ok2, ok := p.ownSet[int32(an.K)]; ok {
				p.newF[ok2] = p.newF[ok2].Add(fk)
			}
			if oj, ok := p.ownSet[int32(an.J)]; ok {
				p.newF[oj] = p.newF[oj].Sub(fi.Add(fk))
				eangle += an.Kth * dT * dT
			}
		}
	}

	// Torsions: same ownership rule; energy counted by the owner of J.
	processedDihedrals := map[int32]bool{}
	for _, a := range p.atoms {
		for _, dIdx := range s.dihedralsOf[a.id] {
			if processedDihedrals[dIdx] {
				continue
			}
			processedDihedrals[dIdx] = true
			d := sys.Dihedrals[dIdx]
			pi, okI := p.lookup(int32(d.I))
			pj, okJ := p.lookup(int32(d.J))
			pk, okK := p.lookup(int32(d.K))
			pl, okL := p.lookup(int32(d.L))
			if !okI || !okJ || !okK || !okL {
				panic(fmt.Sprintf("mdsim: dihedral %d atoms not visible from patch %d", dIdx, p.idx))
			}
			fi, fj, fk, fl, e, ok := md.DihedralForces(sys.Box, pi, pj, pk, pl, d)
			if !ok {
				continue
			}
			if oi, own := p.ownSet[int32(d.I)]; own {
				p.newF[oi] = p.newF[oi].Add(fi)
			}
			if oj, own := p.ownSet[int32(d.J)]; own {
				p.newF[oj] = p.newF[oj].Add(fj)
				edihedral += e
			}
			if ok2, own := p.ownSet[int32(d.K)]; own {
				p.newF[ok2] = p.newF[ok2].Add(fk)
			}
			if ol, own := p.ownSet[int32(d.L)]; own {
				p.newF[ol] = p.newF[ol].Add(fl)
			}
		}
	}

	// Exclusion correction (PME runs only): subtract erf(βr)/r for
	// excluded pairs (see internal/pme).
	if s.cfg.PME != nil {
		for ai := range p.atoms {
			a := &p.atoms[ai]
			for _, ex := range sys.Excl[a.id] {
				qq := sys.Charge[a.id] * sys.Charge[ex]
				if qq == 0 {
					continue
				}
				bpos, ok := p.lookup(ex)
				if !ok {
					panic(fmt.Sprintf("mdsim: excluded partner %d of %d not visible", ex, a.id))
				}
				d := sys.Box.MinImage(a.pos.Sub(bpos))
				r2 := d.Norm2()
				r := math.Sqrt(r2)
				if r == 0 {
					continue
				}
				erf := math.Erf(beta * r)
				if a.id < ex {
					eel += -qq * erf / r
					// partner's energy share counted by its own patch when
					// it iterates the reverse direction? No: each pair is
					// visited from both sides; count energy once (a.id<ex).
				}
				fr := -qq * (erf/r - 2*beta/math.SqrtPi*math.Exp(-beta*beta*r2)) / r2
				p.newF[ai] = p.newF[ai].Add(d.Scale(fr))
			}
		}
	}

	s.emu.Lock()
	s.energies.LJEnergy += elj
	s.energies.ElecEnergy += eel
	s.energies.BondEnergy += ebond
	s.energies.AngleEnergy += eangle
	s.energies.DihedralEnergy += edihedral
	s.emu.Unlock()
}

// recipReady delivers the per-atom reciprocal forces (ordered like
// p.atoms at stage time).
func (p *patch) recipReady(pe *converse.PE, forces []md.Vec3) {
	for i := range p.atoms {
		p.atoms[i].recipF = forces[i]
	}
	p.finishEval(pe)
}

// finishEval closes the evaluation: add reciprocal forces, second
// half-kick, store forces, and report to the driver.
func (p *patch) finishEval(pe *converse.PE) {
	s := p.sim
	dt := s.cfg.DT
	for i := range p.atoms {
		a := &p.atoms[i]
		total := p.newF[i]
		if s.cfg.PME != nil {
			total = total.Add(a.recipF)
		}
		a.f = total
		if p.primed {
			m := s.cfg.System.Mass[a.id]
			a.vel = a.vel.Add(total.Scale(0.5 * dt / m))
		}
	}
	p.primed = true
	if err := s.coordGrp.Send(pe, 0, s.eStepDone, nil, 8); err != nil {
		panic(fmt.Sprintf("mdsim: done send: %v", err))
	}
}

// drainPending is called at the next beginEval implicitly: buffered
// messages whose eval now matches are applied.
func (p *patch) drainPending(pe *converse.PE) {
	if len(p.pending) == 0 {
		return
	}
	rest := p.pending[:0]
	msgs := p.pending
	p.pending = nil
	for _, m := range msgs {
		if m.eval == p.curEval {
			p.applyExchange(pe, m)
		} else {
			rest = append(rest, m)
		}
	}
	p.pending = append(p.pending, rest...)
}

func ljSwitchLocal(r2, ron2, roff2 float64) (sw, dswdr2 float64) {
	if r2 <= ron2 {
		return 1, 0
	}
	if r2 >= roff2 {
		return 0, 0
	}
	d := roff2 - ron2
	t := roff2 - r2
	sw = t * t * (roff2 + 2*r2 - 3*ron2) / (d * d * d)
	dswdr2 = 6 * t * (ron2 - r2) / (d * d * d)
	return sw, dswdr2
}
