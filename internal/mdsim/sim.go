// Package mdsim is the parallel mini-NAMD of the reproduction: a
// NAMD-style molecular dynamics application on the Charm++ runtime
// (paper §IV-B).
//
// Space is decomposed into patches (a chare array); each step patches
// exchange coordinates and migrating atoms with their 26 neighbours,
// compute cutoff nonbonded and bonded forces, and — every PMEEvery steps —
// evaluate reciprocal-space PME: charges are spread to B-spline grid
// contributions, shipped to the pencil owners of the distributed 3D FFT
// engine, convolved with the Ewald influence function via
// forward-filter-backward transforms, and interpolated forces are shipped
// back. Velocity-Verlet integration closes the step.
//
// The static molecular structure (charges, masses, bonds, exclusions) is
// replicated — exactly as NAMD replicates its Molecule object — while all
// dynamic state (positions, velocities, forces) moves by messages.
package mdsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"blueq/internal/charm"
	"blueq/internal/converse"
	"blueq/internal/fft3d"
	"blueq/internal/m2m"
	"blueq/internal/md"
	"blueq/internal/pme"
)

// PMEConfig enables reciprocal-space PME.
type PMEConfig struct {
	Grid  [3]int
	Order int
	Beta  float64
	// Every evaluates the reciprocal sum every k force evaluations
	// (k=4 in the paper's benchmarks); between evaluations the per-atom
	// reciprocal forces are reused.
	Every int
	// Transport selects p2p vs many-to-many for the FFT transposes.
	Transport fft3d.Transport
	// ExchangeM2M routes the charge-grid scatter and force-return phases
	// through persistent CmiDirectManytomany handles as well — the
	// paper's "new optimized PME" (§IV-B.2), where the application only
	// calls CmiDirectManytomany_start each iteration.
	ExchangeM2M bool
}

// Config describes a parallel MD run.
type Config struct {
	System    *md.System
	Nonbonded md.NonbondedParams
	DT        float64
	Steps     int
	PME       *PMEConfig
	// PatchGrid is patches per dimension; zero selects one patch per
	// cutoff-sized cell (min 1).
	PatchGrid [3]int
	// Runtime is the Converse machine configuration.
	Runtime converse.Config
}

// Report summarizes a completed run.
type Report struct {
	Steps          int
	ForceEvals     int
	RecipEvals     int
	Kinetic        float64
	Potential      float64
	LJEnergy       float64
	ElecEnergy     float64
	BondEnergy     float64
	AngleEnergy    float64
	DihedralEnergy float64
	Migrations     int64
}

// Total returns kinetic + potential energy.
func (r Report) Total() float64 { return r.Kinetic + r.Potential }

// Simulation is a declared parallel MD application. Build with New, run
// once with Run.
type Simulation struct {
	cfg Config
	rt  *charm.Runtime

	px, py, pz int
	patchArr   *charm.Array
	coordGrp   *charm.Group
	eng        *fft3d.Engine
	// Optimized-PME persistent burst handles (nil on the p2p path).
	hCharges, hReply *m2m.Handle

	ePatchStep, eExchange, ePatchPME int
	eCharges, eRecipBack, eStepDone  int

	selfEnergy float64

	// static topology lookup: atom id -> indices into System.Bonds/Angles/
	// Dihedrals
	bondsOf     [][]int32
	anglesOf    [][]int32
	dihedralsOf [][]int32
	// number of PEs that home at least one patch (charge-message senders)
	sendingPEs int

	// driver state, mutated only on PE 0's scheduler
	stepsDone   int
	evalCount   int
	patchesDone int
	recipEvals  int
	finished    chan struct{}

	// per-evaluation energy accumulation
	emu         sync.Mutex
	energies    Report
	recipAccum  float64
	recipParts  int
	recipEnergy float64

	migrations atomic.Int64
}

// New validates the configuration and declares the application on a fresh
// runtime.
func New(cfg Config) (*Simulation, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("mdsim: nil system")
	}
	if err := cfg.System.Validate(); err != nil {
		return nil, err
	}
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("mdsim: DT = %g", cfg.DT)
	}
	if cfg.Steps < 0 {
		return nil, fmt.Errorf("mdsim: Steps = %d", cfg.Steps)
	}
	if cfg.Nonbonded.Cutoff <= 0 {
		return nil, fmt.Errorf("mdsim: cutoff = %g", cfg.Nonbonded.Cutoff)
	}
	if cfg.PME != nil {
		if cfg.PME.Every < 1 {
			cfg.PME.Every = 1
		}
		if cfg.PME.Beta != cfg.Nonbonded.EwaldBeta {
			return nil, fmt.Errorf("mdsim: PME beta %g != nonbonded EwaldBeta %g", cfg.PME.Beta, cfg.Nonbonded.EwaldBeta)
		}
	}
	rt, err := charm.NewRuntime(cfg.Runtime)
	if err != nil {
		return nil, err
	}
	s := &Simulation{cfg: cfg, rt: rt, finished: make(chan struct{})}
	s.px, s.py, s.pz = s.choosePatchGrid()
	for d, p := range []int{s.px, s.py, s.pz} {
		if size := cfg.System.Box.L[d] / float64(p); p > 1 && size < cfg.Nonbonded.Cutoff {
			return nil, fmt.Errorf("mdsim: patch size %g in dim %d below cutoff %g", size, d, cfg.Nonbonded.Cutoff)
		}
	}

	var mgr *m2m.Manager
	if cfg.PME != nil && (cfg.PME.Transport == fft3d.M2M || cfg.PME.ExchangeM2M) {
		mgr = m2m.NewManager(rt.Machine())
	}
	if cfg.PME != nil {
		eng, err := fft3d.New(rt, mgr, fft3d.Config{
			NX: cfg.PME.Grid[0], NY: cfg.PME.Grid[1], NZ: cfg.PME.Grid[2],
			Transport: cfg.PME.Transport,
			Filter:    s.influence(),
		})
		if err != nil {
			return nil, err
		}
		s.eng = eng
		eng.SetOnLocalComplete(func(pe *converse.PE) { s.coord(pe).fftDone(pe) })
		var q2 float64
		for _, c := range cfg.System.Charge {
			q2 += c * c
		}
		s.selfEnergy = -cfg.PME.Beta / math.SqrtPi * q2
	}

	s.declarePatches()
	s.declareCoordinators()
	if cfg.PME != nil && cfg.PME.ExchangeM2M {
		if err := s.declarePMEM2M(mgr); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Simulation) choosePatchGrid() (px, py, pz int) {
	g := s.cfg.PatchGrid
	out := [3]int{}
	for d := 0; d < 3; d++ {
		if g[d] > 0 {
			out[d] = g[d]
			continue
		}
		out[d] = int(s.cfg.System.Box.L[d] / s.cfg.Nonbonded.Cutoff)
		if out[d] < 1 {
			out[d] = 1
		}
	}
	return out[0], out[1], out[2]
}

// NumPatches returns the total patch count.
func (s *Simulation) NumPatches() int { return s.px * s.py * s.pz }

// Runtime exposes the underlying Charm++ runtime.
func (s *Simulation) Runtime() *charm.Runtime { return s.rt }

// influence returns the PME spectral filter D(m) (see internal/pme).
func (s *Simulation) influence() func(kx, ky, kz int, v complex128) complex128 {
	p := s.cfg.PME
	box := s.cfg.System.Box
	bx := pmeSplineModuli(p.Grid[0], p.Order)
	by := pmeSplineModuli(p.Grid[1], p.Order)
	bz := pmeSplineModuli(p.Grid[2], p.Order)
	beta := p.Beta
	return func(kx, ky, kz int, v complex128) complex128 {
		if kx == 0 && ky == 0 && kz == 0 {
			return 0
		}
		fx := float64(wrapFreq(kx, p.Grid[0])) / box.L[0]
		fy := float64(wrapFreq(ky, p.Grid[1])) / box.L[1]
		fz := float64(wrapFreq(kz, p.Grid[2])) / box.L[2]
		m2 := fx*fx + fy*fy + fz*fz
		d := math.Exp(-math.Pi*math.Pi*m2/(beta*beta)) / m2 * bx[kx] * by[ky] * bz[kz]
		return v * complex(d, 0)
	}
}

func wrapFreq(m, k int) int {
	if m > k/2 {
		return m - k
	}
	return m
}

// Run executes the configured number of steps and returns the report of
// the final force evaluation. It may be called once.
func (s *Simulation) Run() Report {
	s.rt.Run(func(pe *converse.PE) {
		// Prime: force evaluation 0 on every patch.
		if err := s.patchArr.Broadcast(pe, s.ePatchStep, &stepMsg{eval: 0, prime: true}, 16); err != nil {
			panic(fmt.Sprintf("mdsim: prime broadcast: %v", err))
		}
	})
	<-s.finished
	return s.report()
}

// stepMsg drives one force evaluation on a patch.
type stepMsg struct {
	eval  int
	prime bool
}

// driverPatchDone runs on PE 0 (serialized by its scheduler) counting patch
// completions and launching the next step.
func (s *Simulation) driverPatchDone(pe *converse.PE) {
	s.patchesDone++
	if s.patchesDone < s.NumPatches() {
		return
	}
	s.patchesDone = 0
	if s.evalCount > 0 {
		s.stepsDone++
	}
	if s.stepsDone >= s.cfg.Steps {
		s.rt.Shutdown()
		close(s.finished)
		return
	}
	s.evalCount++
	// Fresh accumulation window for the next evaluation's energies.
	s.emu.Lock()
	s.energies = Report{}
	s.emu.Unlock()
	msg := &stepMsg{eval: s.evalCount}
	if err := s.patchArr.Broadcast(pe, s.ePatchStep, msg, 16); err != nil {
		panic(fmt.Sprintf("mdsim: step broadcast: %v", err))
	}
}

func (s *Simulation) isPMEEval(eval int) bool {
	return s.cfg.PME != nil && eval%s.cfg.PME.Every == 0
}

func (s *Simulation) report() Report {
	s.emu.Lock()
	r := s.energies
	if s.cfg.PME != nil {
		r.ElecEnergy += s.recipEnergy + s.selfEnergy
	}
	r.RecipEvals = s.recipEvals
	s.emu.Unlock()
	r.Steps = s.stepsDone
	r.ForceEvals = s.evalCount + 1
	r.Migrations = s.migrations.Load()
	r.Kinetic = 0
	for i := 0; i < s.NumPatches(); i++ {
		p := s.patchArr.Element(i).(*patch)
		for _, a := range p.atoms {
			r.Kinetic += 0.5 * s.cfg.System.Mass[a.id] * a.vel.Norm2()
		}
	}
	r.Potential = r.LJEnergy + r.ElecEnergy + r.BondEnergy + r.AngleEnergy + r.DihedralEnergy
	return r
}

// ForcesByAtom returns the last evaluation's total force per atom id.
// Valid after Run returns.
func (s *Simulation) ForcesByAtom() []md.Vec3 {
	out := make([]md.Vec3, s.cfg.System.N())
	for i := 0; i < s.NumPatches(); i++ {
		p := s.patchArr.Element(i).(*patch)
		for _, a := range p.atoms {
			out[a.id] = a.f
		}
	}
	return out
}

// AtomsPerPatch returns the current atom count of every patch (for tests
// and load statistics). Valid after Run returns.
func (s *Simulation) AtomsPerPatch() []int {
	out := make([]int, s.NumPatches())
	for i := range out {
		out[i] = len(s.patchArr.Element(i).(*patch).atoms)
	}
	return out
}

// ExtractSystem copies the final positions and velocities into a clone of
// the input system, for comparison against serial integration.
func (s *Simulation) ExtractSystem() *md.System {
	out := *s.cfg.System
	out.Pos = make([]md.Vec3, s.cfg.System.N())
	out.Vel = make([]md.Vec3, s.cfg.System.N())
	for i := 0; i < s.NumPatches(); i++ {
		p := s.patchArr.Element(i).(*patch)
		for _, a := range p.atoms {
			out.Pos[a.id] = a.pos
			out.Vel[a.id] = a.vel
		}
	}
	return &out
}

// pmeSplineModuli mirrors pme's spline moduli for the influence function.
func pmeSplineModuli(k, order int) []float64 { return pme.SplineModuli(k, order) }
