package mdsim

import (
	"reflect"
	"testing"

	"blueq/internal/md"
)

// TestPatchCheckpointRoundtrip packs a populated patch and unpacks it into
// a fresh one carrying stale transients, asserting the durable state comes
// back bit-for-bit and every transient is reset.
func TestPatchCheckpointRoundtrip(t *testing.T) {
	src := &patch{
		atoms: []atomRec{
			{id: 3, pos: md.Vec3{1.5, -2.25, 3.125}, vel: md.Vec3{0.1, 0.2, -0.3},
				f: md.Vec3{-4, 5, 6}, recipF: md.Vec3{0.01, -0.02, 0.03}},
			{id: 17, pos: md.Vec3{-7.5, 8.0, -9.75}, vel: md.Vec3{1e-9, -1e9, 0},
				f: md.Vec3{0, 0, 0}, recipF: md.Vec3{2.5, 2.5, 2.5}},
		},
		curEval: 42,
		primed:  true,
	}
	blob := src.PackCheckpoint()
	want := 16 + atomRecBytes*len(src.atoms)
	if len(blob) != want {
		t.Fatalf("blob length %d, want %d", len(blob), want)
	}

	dst := &patch{
		atoms:      []atomRec{{id: 99}},
		curEval:    -1,
		exchRecv:   5,
		pending:    []*exchangeMsg{{}},
		cache:      []idPos{{id: 1}},
		ownSet:     map[int32]int{1: 0},
		newF:       []md.Vec3{{1, 1, 1}},
		nbDone:     true,
		pmePending: true,
	}
	dst.UnpackCheckpoint(blob)

	if !reflect.DeepEqual(dst.atoms, src.atoms) {
		t.Errorf("atoms differ after roundtrip:\n got %+v\nwant %+v", dst.atoms, src.atoms)
	}
	if dst.curEval != src.curEval || dst.primed != src.primed {
		t.Errorf("cursor state: got curEval=%d primed=%v, want %d/%v",
			dst.curEval, dst.primed, src.curEval, src.primed)
	}
	if dst.exchRecv != 0 || dst.pending != nil || dst.cache != nil ||
		dst.ownSet != nil || dst.newF != nil || dst.nbDone || dst.pmePending {
		t.Errorf("transients not reset: %+v", dst)
	}

	// Mutating the blob must not alias restored state.
	for i := range blob {
		blob[i] = 0xff
	}
	if dst.atoms[0].id != 3 {
		t.Errorf("restored atoms alias the checkpoint blob")
	}
}

// TestPatchCheckpointBadBlob verifies truncated blobs are rejected loudly.
func TestPatchCheckpointBadBlob(t *testing.T) {
	p := &patch{atoms: []atomRec{{id: 1}}, curEval: 0}
	blob := p.PackCheckpoint()
	for _, n := range []int{0, 8, len(blob) - 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UnpackCheckpoint accepted %d-byte blob", n)
				}
			}()
			(&patch{}).UnpackCheckpoint(blob[:n])
		}()
	}
}
