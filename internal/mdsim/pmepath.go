package mdsim

import (
	"fmt"
	"math"

	"blueq/internal/charm"
	"blueq/internal/converse"
	"blueq/internal/m2m"
	"blueq/internal/md"
	"blueq/internal/pme"
)

// The distributed PME path. Each PE runs a coordinator (a group element)
// that aggregates the charge-spreading contributions of the patches homed
// on that PE, ships them to the FFT pencil owners, and distributes the
// returned potential back to per-atom reciprocal forces — the structure of
// NAMD's optimized PME (paper §IV-B.2, Fig. 3): charge grid to PME
// processors, parallel 3D FFT, Ewald kernel, inverse FFT, forces back.

// chargeMsg carries one PE's grid contributions to one pencil owner.
type chargeMsg struct {
	srcPE   int
	indices []int32
	values  []float64
}

// recipBackMsg returns the potential at the requested grid points.
type recipBackMsg struct {
	srcPencil int
	values    []float64
}

// forceRec maps one staged grid contribution back to an atom force term.
type forceRec struct {
	patch      *patch
	atomIdx    int32
	gx, gy, gz float64 // derivative weights × q × K/L, per axis
}

// coordinator is the per-PE PME aggregation element.
type coordinator struct {
	sim *Simulation
	pe  int

	patchesHere    int
	pendingPatches []*patch
	stagedPatches  int

	// sender side
	idxStage [][]int32
	valStage [][]float64
	recs     [][]forceRec // per pencil PE, aligned with staged entries
	forces   map[*patch][]md.Vec3
	replies  int

	// pencil side
	chargesArrived int
	requests       [][]int32 // per source PE, indices to return
	hasReq         []bool    // distinguishes "sent empty" from "not a sender"
	qCopy          []float64
	replyStage     []*recipBackMsg
}

func (s *Simulation) declareCoordinators() {
	s.coordGrp = s.rt.NewGroup("pmecoord", func(pe int) charm.Element {
		c := &coordinator{sim: s, pe: pe}
		for i := 0; i < s.NumPatches(); i++ {
			if s.patchArr.HomePE(i) == pe {
				c.patchesHere++
			}
		}
		return c
	})
	s.eCharges = s.coordGrp.Entry(func(pe *converse.PE, el charm.Element, payload any) {
		el.(*coordinator).chargeRecv(pe, payload.(*chargeMsg))
	})
	s.eRecipBack = s.coordGrp.Entry(func(pe *converse.PE, el charm.Element, payload any) {
		el.(*coordinator).recipBack(pe, payload.(*recipBackMsg))
	})
	s.eStepDone = s.coordGrp.Entry(func(pe *converse.PE, el charm.Element, payload any) {
		s.driverPatchDone(pe)
	})

	// Precompute static topology indices and the set of charge-sending PEs.
	sys := s.cfg.System
	s.bondsOf = make([][]int32, sys.N())
	for i, b := range sys.Bonds {
		s.bondsOf[b.I] = append(s.bondsOf[b.I], int32(i))
		s.bondsOf[b.J] = append(s.bondsOf[b.J], int32(i))
	}
	s.anglesOf = make([][]int32, sys.N())
	for i, a := range sys.Angles {
		s.anglesOf[a.I] = append(s.anglesOf[a.I], int32(i))
		s.anglesOf[a.J] = append(s.anglesOf[a.J], int32(i))
		s.anglesOf[a.K] = append(s.anglesOf[a.K], int32(i))
	}
	s.dihedralsOf = make([][]int32, sys.N())
	for i, d := range sys.Dihedrals {
		for _, atom := range []int{d.I, d.J, d.K, d.L} {
			s.dihedralsOf[atom] = append(s.dihedralsOf[atom], int32(i))
		}
	}
	s.sendingPEs = 0
	for pe := 0; pe < s.rt.NumPEs(); pe++ {
		n := 0
		for i := 0; i < s.NumPatches(); i++ {
			if s.patchArr.HomePE(i) == pe {
				n++
			}
		}
		if n > 0 {
			s.sendingPEs++
		}
	}
}

// coord returns the coordinator element of the calling PE.
func (s *Simulation) coord(pe *converse.PE) *coordinator {
	return s.coordGrp.Local(pe).(*coordinator)
}

// stagePatch spreads the charges of one patch into the per-destination
// staging buffers. Called from patch entries on the same PE (serialized by
// the scheduler). When every local patch has staged, the charge messages
// go out to all pencil owners.
func (c *coordinator) stagePatch(pe *converse.PE, p *patch) {
	s := c.sim
	cfg := s.cfg.PME
	eng := s.eng
	sys := s.cfg.System
	npes := s.rt.NumPEs()
	if c.idxStage == nil {
		c.idxStage = make([][]int32, npes)
		c.valStage = make([][]float64, npes)
		c.recs = make([][]forceRec, npes)
		c.forces = make(map[*patch][]md.Vec3)
	}
	c.forces[p] = make([]md.Vec3, len(p.atoms))
	c.pendingPatches = append(c.pendingPatches, p)

	order := cfg.Order
	k1, k2, k3 := cfg.Grid[0], cfg.Grid[1], cfg.Grid[2]
	wx := make([]float64, order)
	wy := make([]float64, order)
	wz := make([]float64, order)
	dwx := make([]float64, order)
	dwy := make([]float64, order)
	dwz := make([]float64, order)
	for ai := range p.atoms {
		a := &p.atoms[ai]
		qi := sys.Charge[a.id]
		if qi == 0 {
			continue
		}
		pos := sys.Box.Wrap(a.pos)
		u1 := pos[0] / sys.Box.L[0] * float64(k1)
		u2 := pos[1] / sys.Box.L[1] * float64(k2)
		u3 := pos[2] / sys.Box.L[2] * float64(k3)
		k0x := pme.BsplineWeights(order, u1, wx, dwx)
		k0y := pme.BsplineWeights(order, u2, wy, dwy)
		k0z := pme.BsplineWeights(order, u3, wz, dwz)
		sx := float64(k1) / sys.Box.L[0]
		sy := float64(k2) / sys.Box.L[1]
		sz := float64(k3) / sys.Box.L[2]
		for ia := 0; ia < order; ia++ {
			gx := modInt(k0x+ia, k1)
			for ib := 0; ib < order; ib++ {
				gy := modInt(k0y+ib, k2)
				dst := eng.ZOwnerOf(gx, gy)
				xb, yb := eng.ZSpans(dst)
				base := ((gx-xb.Lo)*yb.Len() + (gy - yb.Lo)) * k3
				for ic := 0; ic < order; ic++ {
					gz := modInt(k0z+ic, k3)
					c.idxStage[dst] = append(c.idxStage[dst], int32(base+gz))
					c.valStage[dst] = append(c.valStage[dst], qi*wx[ia]*wy[ib]*wz[ic])
					c.recs[dst] = append(c.recs[dst], forceRec{
						patch:   p,
						atomIdx: int32(ai),
						gx:      qi * dwx[ia] * wy[ib] * wz[ic] * sx,
						gy:      qi * wx[ia] * dwy[ib] * wz[ic] * sy,
						gz:      qi * wx[ia] * wy[ib] * dwz[ic] * sz,
					})
				}
			}
		}
	}

	c.stagedPatches++
	if c.stagedPatches < c.patchesHere {
		return
	}
	c.stagedPatches = 0
	if s.hCharges != nil {
		// Optimized PME (paper §IV-B.2): the whole charge burst goes out
		// through the persistent many-to-many handle in one Start call.
		s.hCharges.Start(pe)
		return
	}
	for dst := 0; dst < npes; dst++ {
		msg := c.takeChargeMsg(dst)
		if err := s.coordGrp.Send(pe, dst, s.eCharges, msg, 8+12*len(msg.indices)); err != nil {
			panic(fmt.Sprintf("mdsim: charge send: %v", err))
		}
	}
}

// takeChargeMsg hands over (and clears) the staged contributions for one
// destination; called by the p2p loop or by an m2m fetch on a comm thread.
func (c *coordinator) takeChargeMsg(dst int) *chargeMsg {
	msg := &chargeMsg{srcPE: c.pe, indices: c.idxStage[dst], values: c.valStage[dst]}
	c.idxStage[dst] = nil
	c.valStage[dst] = nil
	return msg
}

// chargeRecv accumulates contributions into this PE's pencil block and
// starts the local FFT once every sending PE has reported.
func (c *coordinator) chargeRecv(pe *converse.PE, m *chargeMsg) {
	s := c.sim
	z := s.eng.ZData(c.pe)
	if c.chargesArrived == 0 {
		for i := range z {
			z[i] = 0
		}
		if c.requests == nil {
			c.requests = make([][]int32, s.rt.NumPEs())
			c.hasReq = make([]bool, s.rt.NumPEs())
		}
	}
	for k, idx := range m.indices {
		z[idx] += complex(m.values[k], 0)
	}
	c.requests[m.srcPE] = m.indices
	c.hasReq[m.srcPE] = true
	c.chargesArrived++
	if c.chargesArrived < s.sendingPEs {
		return
	}
	c.chargesArrived = 0
	if c.qCopy == nil {
		c.qCopy = make([]float64, len(z))
	}
	for i, v := range z {
		c.qCopy[i] = real(v)
	}
	s.eng.StartLocal(pe)
}

// fftDone runs after the engine's backward transform: the pencil block now
// holds ψ = IFFT(D·FFT(Q)). Scale to the potential grid φ, accumulate the
// reciprocal energy, and return φ at every requested point.
func (c *coordinator) fftDone(pe *converse.PE) {
	s := c.sim
	cfg := s.cfg.PME
	z := s.eng.ZData(c.pe)
	ktot := float64(cfg.Grid[0] * cfg.Grid[1] * cfg.Grid[2])
	scale := ktot / (math.Pi * s.cfg.System.Box.Volume())
	local := 0.0
	for i, v := range z {
		local += c.qCopy[i] * real(v)
	}
	local *= 0.5 * scale

	s.emu.Lock()
	s.recipAccum += local
	s.recipParts++
	if s.recipParts == s.rt.NumPEs() {
		s.recipEnergy = s.recipAccum
		s.recipAccum = 0
		s.recipParts = 0
		s.recipEvals++
	}
	s.emu.Unlock()

	if c.replyStage == nil {
		c.replyStage = make([]*recipBackMsg, s.rt.NumPEs())
	}
	for src, idxs := range c.requests {
		if !c.hasReq[src] {
			continue
		}
		vals := make([]float64, len(idxs))
		for k, idx := range idxs {
			vals[k] = real(z[idx]) * scale
		}
		c.requests[src] = nil
		c.hasReq[src] = false
		c.replyStage[src] = &recipBackMsg{srcPencil: c.pe, values: vals}
	}
	if s.hReply != nil {
		s.hReply.Start(pe)
		return
	}
	for src, msg := range c.replyStage {
		if msg == nil {
			continue
		}
		c.replyStage[src] = nil
		if err := s.coordGrp.Send(pe, src, s.eRecipBack, msg, 8+8*len(msg.values)); err != nil {
			panic(fmt.Sprintf("mdsim: recip reply: %v", err))
		}
	}
}

// takeReply hands over (and clears) the staged potential reply for one
// charge-sending PE.
func (c *coordinator) takeReply(dst int) *recipBackMsg {
	msg := c.replyStage[dst]
	c.replyStage[dst] = nil
	if msg == nil {
		// Pencil PEs reply to every sender slot in the persistent pattern;
		// an empty reply keeps the counts uniform.
		msg = &recipBackMsg{srcPencil: c.pe}
	}
	return msg
}

// recipBack folds returned potentials into per-atom reciprocal forces;
// when every pencil has replied, the pending patches complete.
func (c *coordinator) recipBack(pe *converse.PE, m *recipBackMsg) {
	recs := c.recs[m.srcPencil]
	if len(recs) != len(m.values) {
		panic(fmt.Sprintf("mdsim: reply length %d != staged %d", len(m.values), len(recs)))
	}
	for k, rec := range recs {
		phi := m.values[k]
		f := c.forces[rec.patch]
		f[rec.atomIdx] = f[rec.atomIdx].Sub(md.Vec3{rec.gx * phi, rec.gy * phi, rec.gz * phi})
	}
	c.recs[m.srcPencil] = nil
	c.replies++
	if c.replies < c.sim.rt.NumPEs() {
		return
	}
	c.replies = 0
	pending := c.pendingPatches
	c.pendingPatches = nil
	for _, p := range pending {
		forces := c.forces[p]
		delete(c.forces, p)
		p.recipReady(pe, forces)
	}
}

// declarePMEM2M registers the persistent many-to-many handles of the
// optimized PME: one for the charge-grid scatter (patch PEs → pencil
// owners) and one for the potential return. Communication operations are
// set up once; each PME evaluation only calls Start on the handles — the
// paper's CmiDirectManytomany_start pattern.
func (s *Simulation) declarePMEM2M(mgr *m2m.Manager) error {
	npes := s.rt.NumPEs()
	s.hCharges = mgr.NewHandle()
	s.hReply = mgr.NewHandle()
	var senders []int
	for pe := 0; pe < npes; pe++ {
		for i := 0; i < s.NumPatches(); i++ {
			if s.patchArr.HomePE(i) == pe {
				senders = append(senders, pe)
				break
			}
		}
	}
	coordOn := func(pe int) *coordinator { return s.coordGrp.ElementOn(pe).(*coordinator) }
	for _, src := range senders {
		src := src
		for dst := 0; dst < npes; dst++ {
			dst := dst
			err := s.hCharges.RegisterSend(src, dst, src, 4096, func() any {
				return coordOn(src).takeChargeMsg(dst)
			})
			if err != nil {
				return err
			}
		}
	}
	for dst := 0; dst < npes; dst++ {
		err := s.hCharges.RegisterRecv(dst, len(senders),
			func(pe *converse.PE, slot, srcPE int, data any) {
				s.coord(pe).chargeRecv(pe, data.(*chargeMsg))
			}, nil)
		if err != nil {
			return err
		}
	}
	for src := 0; src < npes; src++ {
		src := src
		for _, dst := range senders {
			dst := dst
			err := s.hReply.RegisterSend(src, dst, src, 4096, func() any {
				return coordOn(src).takeReply(dst)
			})
			if err != nil {
				return err
			}
		}
	}
	for _, dst := range senders {
		err := s.hReply.RegisterRecv(dst, npes,
			func(pe *converse.PE, slot, srcPE int, data any) {
				s.coord(pe).recipBack(pe, data.(*recipBackMsg))
			}, nil)
		if err != nil {
			return err
		}
	}
	return nil
}

func modInt(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
